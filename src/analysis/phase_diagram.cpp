#include "analysis/phase_diagram.hpp"

#include <algorithm>
#include <iterator>
#include <span>
#include <unordered_map>

#include "engine/csv_reader.hpp"
#include "engine/sweep.hpp"
#include "engine/thread_pool.hpp"
#include "rand/rng.hpp"
#include "util/assert.hpp"

namespace p2p::analysis {

namespace {

using engine::CellParams;
using engine::ReportKind;
using engine::ReportSchema;
using engine::Table;

/// The axis columns, in grid-head order, taken from the writer's own
/// schema constants (column 0 of the head is the cell index; the axes
/// follow) — the same no-drift source the reader validates against.
std::span<const char* const> axis_names() {
  return engine::sweep_schema_head().subspan(1);
}
const std::size_t kNumAxes = axis_names().size();

std::size_t axis_index(const std::string& name) {
  for (std::size_t i = 0; i < kNumAxes; ++i) {
    if (name == axis_names()[i]) return i;
  }
  P2P_ASSERT_MSG(false, "unknown grid axis \"" + name +
                            "\" (valid: lambda, us, mu, gamma, k, eta, "
                            "flash, mix, hetero)");
  return kNumAxes;
}

double axis_value(const CellParams& p, std::size_t axis) {
  switch (axis) {
    case 0: return p.lambda;
    case 1: return p.us;
    case 2: return p.mu;
    case 3: return p.gamma;
    case 4: return static_cast<double>(p.k);
    case 5: return p.eta;
    case 6: return static_cast<double>(p.flash);
    case 7: return p.mix;
    case 8: return p.hetero;
  }
  P2P_ASSERT(false);
  return 0;
}

void set_refinable(CellParams& p, const std::string& name, double v) {
  if (name == "lambda") {
    p.lambda = v;
  } else if (name == "us") {
    p.us = v;
  } else if (name == "mu") {
    p.mu = v;
  } else if (name == "gamma") {
    p.gamma = v;
  } else if (name == "mix") {
    p.mix = v;
  } else {
    P2P_ASSERT_MSG(false, "axis \"" + name + "\" is not refinable");
  }
}

Stability parse_verdict(const std::string& cell, const std::string& context) {
  for (const Stability v : {Stability::kPositiveRecurrent,
                            Stability::kTransient, Stability::kBorderline}) {
    if (cell == to_string(v)) return v;
  }
  P2P_ASSERT_MSG(false, "unknown verdict \"" + cell + "\" in " + context);
  return Stability::kBorderline;
}

/// Exact-match value -> first-appearance index, tolerating +-0.0
/// aliasing. Axis values come verbatim from the emitting grid, so
/// equality — not tolerance — is the right notion of "same coarse
/// value".
class ValueIndex {
 public:
  /// Returns the value's index, inserting it if new.
  std::size_t insert(double v) {
    const auto [it, inserted] = map_.try_emplace(key(v), values_.size());
    if (inserted) values_.push_back(v);
    return it->second;
  }
  /// Index of an already-inserted value.
  std::size_t at(double v) const { return map_.at(key(v)); }
  std::size_t size() const { return values_.size(); }
  const std::vector<double>& values() const { return values_; }

 private:
  static double key(double v) { return v == 0 ? 0.0 : v; }
  std::unordered_map<double, std::size_t> map_;
  std::vector<double> values_;
};

/// a == b up to fp noise from reconstructing products out of their
/// archived factors (division + multiplication round-trips).
bool close(double a, double b) {
  return std::abs(a - b) <= 1e-9 * std::max({1.0, std::abs(a), std::abs(b)});
}

/// Shared ingestion core behind both build_phase_grid overloads: one
/// pass over the rows pumped by `next_row` (an in-memory Table or the
/// streaming CsvReader), retaining O(cells) typed state — never the
/// document. The per-type block is kept as doubles for the post-pass
/// scenario reconstruction, so rows are not revisited.
PhaseGrid build_phase_grid_rows(
    const std::vector<std::string>& columns,
    const std::function<bool(std::vector<std::string>*)>& next_row,
    const std::string& x_req, const std::string& y_req) {
  const ReportSchema schema = engine::validate_report_schema(columns);
  P2P_ASSERT_MSG(schema.kind == ReportKind::kGrid,
                 "phase grids are built from grid reports, not frontier "
                 "tables (header starts with \"row\")");

  // --- Typed ingestion, one streaming pass ---
  std::vector<PhaseCell> parsed;
  std::vector<ValueIndex> axis_values(kNumAxes);
  const std::size_t tail = schema.tail_start;
  const std::size_t block = engine::sweep_schema_head().size();
  const std::size_t block_width = schema.mix_types.size() + 1;
  // Optional trailing columns sit after the fixed tail, in the order
  // the writer appends them: sim_backend, policy, fluid_verdict. Their
  // positions depend on which are present, so derive them from the
  // schema flags instead of fixed offsets.
  std::size_t opt = tail + engine::sweep_schema_tail().size();
  if (schema.has_backend) ++opt;
  const std::size_t policy_col = schema.has_policy ? opt++ : 0;
  const std::size_t fluid_col = schema.has_fluid ? opt : 0;
  std::string policy;
  // Row-major per-type block copies (lambda_empty first), when present.
  std::vector<double> type_cols;
  std::vector<std::string> row;
  for (std::size_t r = 0; next_row(&row); ++r) {
    const std::string ctx = "grid report row " + std::to_string(r);
    const auto num = [&](std::size_t col) {
      return engine::parse_report_number(row[col], ctx);
    };

    P2P_ASSERT_MSG(num(0) == static_cast<double>(r),
                   "grid report cell indices must run 0..n-1 in row order "
                   "(" + ctx + " has cell " + row[0] + ")");
    PhaseCell c;
    c.params.lambda = num(1);
    c.params.us = num(2);
    c.params.mu = num(3);
    c.params.gamma = num(4);
    const double k_raw = num(5);
    c.params.k = static_cast<int>(std::lround(k_raw));
    c.params.eta = num(6);
    const double flash_raw = num(7);
    c.params.flash = std::llround(flash_raw);
    c.params.mix = num(8);
    c.params.hetero = num(9);

    P2P_ASSERT_MSG(std::isfinite(c.params.lambda) && c.params.lambda > 0,
                   "lambda must be a positive finite number (" + ctx + ")");
    P2P_ASSERT_MSG(std::isfinite(c.params.us) && c.params.us >= 0,
                   "us must be a nonnegative finite number (" + ctx + ")");
    P2P_ASSERT_MSG(std::isfinite(c.params.mu) && c.params.mu > 0,
                   "mu must be a positive finite number (" + ctx + ")");
    P2P_ASSERT_MSG(c.params.gamma > 0,  // inf allowed
                   "gamma must be positive (" + ctx + ")");
    P2P_ASSERT_MSG(c.params.k >= 1 && std::abs(k_raw - c.params.k) < 1e-9,
                   "k must be a positive integer (" + ctx + ")");
    P2P_ASSERT_MSG(std::isfinite(c.params.eta) && c.params.eta >= 1,
                   "eta must be >= 1 (" + ctx + ")");
    P2P_ASSERT_MSG(
        c.params.flash >= 0 &&
            std::abs(flash_raw - static_cast<double>(c.params.flash)) < 1e-9,
        "flash must be a nonnegative integer (" + ctx + ")");
    P2P_ASSERT_MSG(c.params.mix >= 0 && c.params.mix <= 1,
                   "mix must lie in [0, 1] (" + ctx + ")");
    P2P_ASSERT_MSG(c.params.hetero >= 0 && c.params.hetero < 1,
                   "hetero must lie in [0, 1) (" + ctx + ")");

    c.verdict = parse_verdict(row[tail], ctx);
    c.margin = num(tail + 1);
    const double replicas_raw = num(tail + 3);
    c.replicas = static_cast<int>(std::lround(replicas_raw));
    P2P_ASSERT_MSG(c.replicas >= 0 &&
                       std::abs(replicas_raw - c.replicas) < 1e-9,
                   "replicas must be a nonnegative integer (" + ctx + ")");
    c.sim_mean_peers = num(tail + 5);
    c.ctmc_mean_peers = num(tail + 10);
    if (schema.has_policy) {
      // The policy is a sweep-level constant, so every row must repeat
      // one token — and it must be a token the writer can emit.
      const std::string& tok = row[policy_col];
      if (r == 0) {
        bool known = false;
        for (const PolicyKind kind :
             {PolicyKind::kRandomUseful, PolicyKind::kRarestFirst,
              PolicyKind::kMostCommonFirst, PolicyKind::kSequential}) {
          if (tok == to_string(kind)) known = true;
        }
        P2P_ASSERT_MSG(known,
                       "unknown policy \"" + tok + "\" in " + ctx);
        policy = tok;
      } else {
        P2P_ASSERT_MSG(tok == policy,
                       "the policy column must be constant over the grid "
                       "(" + ctx + " has \"" + tok + "\", row 0 had \"" +
                           policy + "\")");
      }
    }
    if (schema.has_fluid) c.fluid = parse_verdict(row[fluid_col], ctx);

    if (schema.has_scenario) {
      for (std::size_t i = 0; i < block_width; ++i) {
        type_cols.push_back(num(block + i));
      }
    }
    for (std::size_t a = 0; a < kNumAxes; ++a) {
      axis_values[a].insert(axis_value(c.params, a));
    }
    parsed.push_back(c);
  }
  const std::size_t n = parsed.size();
  P2P_ASSERT_MSG(n >= 1, "grid report has no rows");

  // --- Axis selection ---
  std::vector<std::size_t> varying;
  for (std::size_t a = 0; a < kNumAxes; ++a) {
    if (axis_values[a].size() > 1) varying.push_back(a);
  }

  PhaseGrid grid;
  grid.policy = policy;
  grid.has_fluid = schema.has_fluid;
  std::size_t xi_axis = kNumAxes, yi_axis = kNumAxes;
  if (x_req.empty() && y_req.empty()) {
    P2P_ASSERT_MSG(!varying.empty(),
                   "no axis varies in the grid report; a phase diagram "
                   "needs at least one");
    // The engine's effective grid always carries its axes in schema
    // order (set_axis replaces in place on the default region grid,
    // whatever order the --grid spec named them), and cells enumerate
    // with the later axis fastest — so the later varying axis in
    // schema order IS the fast one for every engine-emitted corpus:
    // natural x (columns), the earlier one y (rows). Name --x/--y to
    // transpose (the slot mapping below handles any row order).
    xi_axis = varying.back();
    yi_axis = varying.size() > 1 ? varying.front() : (xi_axis == 0 ? 1 : 0);
  } else {
    // Either request alone pins its axis; the other defaults to the
    // remaining varying axis (or the first constant one).
    const auto other_varying = [&](std::size_t chosen) {
      for (const std::size_t a : varying) {
        if (a != chosen) return a;
      }
      return chosen == 0 ? std::size_t{1} : std::size_t{0};
    };
    if (!x_req.empty()) xi_axis = axis_index(x_req);
    if (!y_req.empty()) yi_axis = axis_index(y_req);
    if (x_req.empty()) xi_axis = other_varying(yi_axis);
    if (y_req.empty()) yi_axis = other_varying(xi_axis);
    P2P_ASSERT_MSG(xi_axis != yi_axis,
                   "x and y must name different axes (both \"" +
                       (x_req.empty() ? y_req : x_req) + "\")");
  }
  for (const std::size_t a : varying) {
    P2P_ASSERT_MSG(a == xi_axis || a == yi_axis,
                   "axis \"" + std::string(axis_names()[a]) +
                       "\" varies but is neither x nor y; a phase diagram "
                       "is a 2-D slice");
  }
  grid.x_axis = axis_names()[xi_axis];
  grid.y_axis = axis_names()[yi_axis];
  grid.x_values = axis_values[xi_axis].values();
  grid.y_values = axis_values[yi_axis].values();

  // --- Tile the cells into row-major [y][x] slots ---
  const std::size_t nx = grid.x_values.size();
  const std::size_t ny = grid.y_values.size();
  P2P_ASSERT_MSG(n == nx * ny,
                 "grid report rows (" + std::to_string(n) +
                     ") do not tile the " + std::to_string(nx) + " x " +
                     std::to_string(ny) + " (x, y) product");
  grid.cells.resize(n);
  std::vector<char> filled(n, 0);
  for (std::size_t r = 0; r < n; ++r) {
    const std::size_t xi = axis_values[xi_axis].at(
        axis_value(parsed[r].params, xi_axis));
    const std::size_t yi = axis_values[yi_axis].at(
        axis_value(parsed[r].params, yi_axis));
    const std::size_t slot = yi * nx + xi;
    P2P_ASSERT_MSG(!filled[slot],
                   "grid report repeats the cell at (" + grid.x_axis + " = " +
                       engine::format_number(grid.x_values[xi]) + ", " +
                       grid.y_axis + " = " +
                       engine::format_number(grid.y_values[yi]) + ")");
    filled[slot] = 1;
    grid.cells[slot] = parsed[r];
  }
  // n == nx * ny and no slot repeated => every slot is filled.

  // --- Scenario reconstruction from the per-type block ---
  if (schema.has_scenario) {
    // The composition is recoverable from any cell with a nonzero typed
    // share; take the largest for the cleanest division.
    std::size_t best = n;
    double best_ml = 0;
    for (std::size_t r = 0; r < n; ++r) {
      const double ml = parsed[r].params.mix * parsed[r].params.lambda;
      if (ml > best_ml) {
        best_ml = ml;
        best = r;
      }
    }
    std::vector<double> rates(schema.mix_types.size(), 0.0);
    if (best < n) {
      const std::string ctx = "grid report row " + std::to_string(best);
      double total = 0;
      for (std::size_t i = 0; i < rates.size(); ++i) {
        rates[i] = type_cols[best * block_width + 1 + i] / best_ml;
        P2P_ASSERT_MSG(std::isfinite(rates[i]) && rates[i] >= 0,
                       "per-type rates must be nonnegative (" + ctx + ")");
        total += rates[i];
      }
      P2P_ASSERT_MSG(std::abs(total - 1) <= 1e-9,
                     "per-type columns divided by mix * lambda must be "
                     "fractions summing to 1 (" + ctx + ")");
      const int k = parsed[best].params.k;
      grid.scenario.name = "ingested";
      grid.scenario.num_pieces = k;
      for (std::size_t i = 0; i < rates.size(); ++i) {
        P2P_ASSERT_MSG(
            schema.mix_types[i].is_subset_of(PieceSet::full(k)),
            "per-type column names a piece beyond the grid's K = " +
                std::to_string(k));
        grid.scenario.mix.push_back({schema.mix_types[i], rates[i]});
      }
    }
    // Every row's per-type block must be consistent with its mix and
    // lambda — a corpus whose composition columns contradict its axes
    // is corrupt, and the re-bisection below would silently classify
    // the wrong model.
    for (std::size_t r = 0; r < n; ++r) {
      const std::string ctx = "grid report row " + std::to_string(r);
      const double lambda = parsed[r].params.lambda;
      const double mix = parsed[r].params.mix;
      P2P_ASSERT_MSG(
          close(type_cols[r * block_width], (1 - mix) * lambda),
          "lambda_empty contradicts (1 - mix) * lambda (" + ctx + ")");
      for (std::size_t i = 0; i < rates.size(); ++i) {
        P2P_ASSERT_MSG(
            close(type_cols[r * block_width + 1 + i],
                  mix * lambda * rates[i]),
            "per-type column " + engine::mix_column_name(schema.mix_types[i]) +
                " contradicts mix * lambda * fraction (" + ctx + ")");
      }
    }
  }
  return grid;
}

/// Shared ingestion core behind both build_box_grid overloads: one pass
/// over the rows, retaining O(boxes) typed state. Geometry comes from
/// the trailing box block; the origin vertex's evaluation from the
/// ordinary grid columns at the same offsets the cartesian builder uses.
BoxGrid build_box_grid_rows(
    const std::vector<std::string>& columns,
    const std::function<bool(std::vector<std::string>*)>& next_row) {
  const ReportSchema schema = engine::validate_report_schema(columns);
  P2P_ASSERT_MSG(schema.kind == ReportKind::kGrid && schema.has_boxes,
                 "box grids are built from adaptive grid reports (header "
                 "carries the box_depth/box_uniform/box_ext_* block)");
  P2P_ASSERT_MSG(schema.box_axes.size() == 2,
                 "box-grid rendering needs exactly two box axes (got " +
                     std::to_string(schema.box_axes.size()) +
                     "; slice higher-D adaptive volumes before rendering)");

  BoxGrid grid;
  // Same orientation as the cartesian builder's default: the later axis
  // in schema order is the fast one — natural x.
  grid.y_axis = schema.box_axes[0];
  grid.x_axis = schema.box_axes[1];
  const std::size_t y_slot = axis_index(grid.y_axis);
  const std::size_t x_slot = axis_index(grid.x_axis);
  const std::size_t tail = schema.tail_start;

  std::vector<std::string> row;
  for (std::size_t r = 0; next_row(&row); ++r) {
    const std::string ctx = "adaptive report row " + std::to_string(r);
    const auto num = [&](std::size_t col) {
      return engine::parse_report_number(row[col], ctx);
    };
    P2P_ASSERT_MSG(num(0) == static_cast<double>(r),
                   "adaptive report cell indices must run 0..n-1 in row "
                   "order (" + ctx + " has cell " + row[0] + ")");
    PhaseBox b;
    b.params.lambda = num(1);
    b.params.us = num(2);
    b.params.mu = num(3);
    b.params.gamma = num(4);
    b.params.k = static_cast<int>(std::lround(num(5)));
    b.params.eta = num(6);
    b.params.flash = std::llround(num(7));
    b.params.mix = num(8);
    b.params.hetero = num(9);
    b.verdict = parse_verdict(row[tail], ctx);
    b.margin = num(tail + 1);
    const double replicas_raw = num(tail + 3);
    b.replicas = static_cast<int>(std::lround(replicas_raw));
    P2P_ASSERT_MSG(b.replicas >= 0 &&
                       std::abs(replicas_raw - b.replicas) < 1e-9,
                   "replicas must be a nonnegative integer (" + ctx + ")");
    b.sim_mean_peers = num(tail + 5);

    const double depth_raw = num(schema.box_start);
    b.depth = static_cast<int>(std::lround(depth_raw));
    P2P_ASSERT_MSG(b.depth >= 0 && std::abs(depth_raw - b.depth) < 1e-9,
                   "box_depth must be a nonnegative integer (" + ctx + ")");
    const double uniform_raw = num(schema.box_start + 1);
    P2P_ASSERT_MSG(uniform_raw == 0 || uniform_raw == 1,
                   "box_uniform must be 0 or 1 (" + ctx + ")");
    b.uniform = uniform_raw == 1;
    b.ext_y = num(schema.box_start + 2);
    b.ext_x = num(schema.box_start + 3);
    P2P_ASSERT_MSG(std::isfinite(b.ext_x) && b.ext_x > 0 &&
                       std::isfinite(b.ext_y) && b.ext_y > 0,
                   "box extents must be positive finite numbers (" + ctx +
                       ")");
    b.x0 = axis_value(b.params, x_slot);
    b.y0 = axis_value(b.params, y_slot);
    P2P_ASSERT_MSG(std::isfinite(b.x0) && std::isfinite(b.y0),
                   "box origins must be finite (" + ctx + ")");
    grid.boxes.push_back(b);
  }
  P2P_ASSERT_MSG(!grid.boxes.empty(), "adaptive report has no rows");

  grid.x_min = grid.boxes[0].x0;
  grid.x_max = grid.boxes[0].x0 + grid.boxes[0].ext_x;
  grid.y_min = grid.boxes[0].y0;
  grid.y_max = grid.boxes[0].y0 + grid.boxes[0].ext_y;
  grid.min_ext_x = grid.boxes[0].ext_x;
  grid.min_ext_y = grid.boxes[0].ext_y;
  double measure = 0;
  for (const PhaseBox& b : grid.boxes) {
    grid.x_min = std::min(grid.x_min, b.x0);
    grid.x_max = std::max(grid.x_max, b.x0 + b.ext_x);
    grid.y_min = std::min(grid.y_min, b.y0);
    grid.y_max = std::max(grid.y_max, b.y0 + b.ext_y);
    grid.min_ext_x = std::min(grid.min_ext_x, b.ext_x);
    grid.min_ext_y = std::min(grid.min_ext_y, b.ext_y);
    grid.max_depth = std::max(grid.max_depth, b.depth);
    measure += b.ext_x * b.ext_y;
  }
  // The leaves of a subdivision tile the window exactly once, so their
  // total measure must equal the bounding window's — a cheap O(n) guard
  // that catches dropped, duplicated or mis-extended rows (box_at then
  // asserts pointwise uniqueness on every query).
  const double window =
      (grid.x_max - grid.x_min) * (grid.y_max - grid.y_min);
  P2P_ASSERT_MSG(std::abs(measure - window) <= 1e-9 * window,
                 "adaptive leaves do not tile their bounding window "
                 "(total box measure " + engine::format_number(measure) +
                     " vs window " + engine::format_number(window) + ")");
  return grid;
}

}  // namespace

const PhaseBox& BoxGrid::box_at(double x, double y) const {
  const PhaseBox* found = nullptr;
  for (const PhaseBox& b : boxes) {
    const bool in_x = x >= b.x0 && (x < b.x0 + b.ext_x ||
                                    (x == x_max && b.x0 + b.ext_x == x_max));
    const bool in_y = y >= b.y0 && (y < b.y0 + b.ext_y ||
                                    (y == y_max && b.y0 + b.ext_y == y_max));
    if (!in_x || !in_y) continue;
    P2P_ASSERT_MSG(found == nullptr,
                   "adaptive leaves overlap at (" +
                       engine::format_number(x) + ", " +
                       engine::format_number(y) + ")");
    found = &b;
  }
  P2P_ASSERT_MSG(found != nullptr,
                 "no adaptive leaf contains (" + engine::format_number(x) +
                     ", " + engine::format_number(y) + ")");
  return *found;
}

BoxGrid build_box_grid(const Table& table) {
  std::size_t r = 0;
  return build_box_grid_rows(table.columns(),
                             [&](std::vector<std::string>* cells) {
                               if (r >= table.num_rows()) return false;
                               *cells = table.row(r++);
                               return true;
                             });
}

BoxGrid build_box_grid(engine::CsvReader& reader) {
  return build_box_grid_rows(
      reader.columns(),
      [&](std::vector<std::string>* cells) { return reader.next_row(cells); });
}

PhaseGrid build_phase_grid(const Table& table, const std::string& x_axis,
                           const std::string& y_axis) {
  std::size_t r = 0;
  return build_phase_grid_rows(
      table.columns(),
      [&](std::vector<std::string>* cells) {
        if (r >= table.num_rows()) return false;
        *cells = table.row(r++);
        return true;
      },
      x_axis, y_axis);
}

PhaseGrid build_phase_grid(engine::CsvReader& reader,
                           const std::string& x_axis,
                           const std::string& y_axis) {
  return build_phase_grid_rows(
      reader.columns(),
      [&](std::vector<std::string>* cells) { return reader.next_row(cells); },
      x_axis, y_axis);
}

std::vector<PhaseFrontierPoint> extract_frontier(const PhaseGrid& grid,
                                                 double tol, int threads) {
  P2P_ASSERT_MSG(std::isfinite(tol) && tol > 0,
                 "frontier tolerance must be positive and finite");
  P2P_ASSERT_MSG(threads >= 1, "frontier extraction threads must be >= 1");
  const bool can_bisect = engine::refinable_axis(grid.x_axis);
  const std::size_t nx = grid.num_x();

  std::vector<PhaseFrontierPoint> points(grid.num_y());
  engine::ThreadPool pool(threads);
  pool.parallel_for(grid.num_y(), [&](std::size_t yi) {
    PhaseFrontierPoint pt;
    pt.row = yi;
    pt.y = grid.y_values[yi];

    // Coarse scan: first adjacent verdict change in grid order — the
    // same convention as refine_frontier, so the two localizations are
    // comparable row for row.
    std::size_t b = nx;
    for (std::size_t xi = 0; xi + 1 < nx; ++xi) {
      if (grid.at(yi, xi).verdict != grid.at(yi, xi + 1).verdict) {
        b = xi;
        break;
      }
    }
    if (b == nx) {
      points[yi] = pt;
      return;
    }
    pt.bracketed = true;
    pt.x_lo = grid.x_values[b];
    pt.x_hi = grid.x_values[b + 1];

    // Data-only estimate: the Theorem-1 margin is piecewise linear in
    // every refinable axis, so when the bracket cells share a critical
    // piece the zero crossing of the recorded margins IS the frontier.
    // The straddle test keeps either endpoint sitting exactly on the
    // boundary (margin 0) — the crossing is then that endpoint itself.
    const double m_lo = grid.at(yi, b).margin;
    const double m_hi = grid.at(yi, b + 1).margin;
    const bool straddles = (m_lo <= 0 && m_hi >= 0) || (m_lo >= 0 && m_hi <= 0);
    if (std::isfinite(m_lo) && std::isfinite(m_hi) && m_lo != m_hi &&
        straddles) {
      pt.interpolated = pt.x_lo + (pt.x_hi - pt.x_lo) * m_lo / (m_lo - m_hi);
    }

    // Closed-form re-derivation: rebuild the bracket cell, bisect the
    // classify() flip — exactly what refine_frontier does at sweep
    // time, now recovered from the archive.
    if (can_bisect && std::isfinite(pt.x_lo) && std::isfinite(pt.x_hi)) {
      CellParams p = grid.at(yi, b).params;
      const auto verdict_at = [&](double v) {
        set_refinable(p, grid.x_axis, v);
        return classify(engine::expand(grid.scenario, p).params).verdict;
      };
      double lo = pt.x_lo;
      double hi = pt.x_hi;
      const Stability at_lo = verdict_at(lo);
      // Same 200-iteration cap as the engine: tol below the bracket's
      // floating-point resolution must not spin.
      for (int iter = 0; std::abs(hi - lo) > tol && iter < 200; ++iter) {
        const double mid = 0.5 * (lo + hi);
        if (verdict_at(mid) == at_lo) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
      pt.value_lo = lo;
      pt.value_hi = hi;
      pt.value = 0.5 * (lo + hi);
      set_refinable(p, grid.x_axis, pt.value);
      pt.margin = classify(engine::expand(grid.scenario, p).params).margin;
    }
    points[yi] = pt;
  });
  return points;
}

VerdictAgreement verdict_agreement(const PhaseGrid& grid, double threshold,
                                   double confidence, int resamples,
                                   std::uint64_t seed) {
  P2P_ASSERT_MSG(confidence > 0 && confidence < 1,
                 "confidence must lie in (0, 1)");
  P2P_ASSERT_MSG(resamples >= 10, "bootstrap resamples must be >= 10");

  VerdictAgreement out;
  out.has_fluid = grid.has_fluid;
  if (grid.has_fluid) {
    // Both verdicts are closed-form, so the theory-vs-fluid matrix
    // covers every cell — no simulation gate.
    for (const PhaseCell& c : grid.cells) {
      const int t = static_cast<int>(c.verdict);
      const int f = static_cast<int>(c.fluid);
      out.fluid_counts[t][f] += 1;
      if (c.verdict != Stability::kBorderline &&
          c.fluid != Stability::kBorderline) {
        ++out.fluid_compared;
        if (c.verdict == c.fluid) ++out.fluid_agreeing;
      }
    }
  }
  std::vector<const PhaseCell*> sim_cells;
  for (const PhaseCell& c : grid.cells) {
    if (c.replicas > 0 && std::isfinite(c.sim_mean_peers)) {
      sim_cells.push_back(&c);
    }
  }
  out.cells_with_sim = sim_cells.size();
  if (sim_cells.empty()) return out;

  if (std::isnan(threshold)) {
    // Median simulated occupancy: scale free, deterministic (sorted,
    // lower-mid/upper-mid average for even counts).
    std::vector<double> means;
    means.reserve(sim_cells.size());
    for (const PhaseCell* c : sim_cells) means.push_back(c->sim_mean_peers);
    std::sort(means.begin(), means.end());
    const std::size_t m = means.size();
    threshold = (m % 2 == 1) ? means[m / 2]
                             : 0.5 * (means[m / 2 - 1] + means[m / 2]);
  }
  P2P_ASSERT_MSG(std::isfinite(threshold),
                 "sim occupancy threshold must be finite");
  out.threshold = threshold;

  std::vector<double> indicators;
  for (const PhaseCell* c : sim_cells) {
    const bool busy = c->sim_mean_peers > threshold;
    out.counts[static_cast<int>(c->verdict)][busy ? 1 : 0] += 1;
    if (grid.has_fluid) {
      out.counts3[static_cast<int>(c->verdict)][static_cast<int>(c->fluid)]
                 [busy ? 1 : 0] += 1;
    }
    if (c->verdict == Stability::kBorderline) continue;
    const bool agree = (c->verdict == Stability::kTransient) == busy;
    indicators.push_back(agree ? 1.0 : 0.0);
    ++out.compared;
    if (agree) ++out.agreeing;
  }
  if (out.compared == 0) return out;

  out.agreement = static_cast<double>(out.agreeing) /
                  static_cast<double>(out.compared);
  Rng rng(seed);
  const BootstrapResult ci = block_bootstrap(
      indicators,
      [](std::span<const double> s) {
        double m = 0;
        for (double x : s) m += x;
        return m / static_cast<double>(s.size());
      },
      /*block_length=*/1, resamples, confidence, rng);
  out.agreement_lo = ci.lower;
  out.agreement_hi = ci.upper;
  return out;
}

}  // namespace p2p::analysis
