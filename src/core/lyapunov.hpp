// The Foster–Lyapunov function of Section VII, evaluated exactly.
//
// For 0 < mu < gamma <= infinity (Eq. (11)/(12)):
//   W(x) = sum_C r^{|C|} T_C,
//   T_C  = E_C^2 / 2 + alpha E_C phi(H_C)   (C != F),
//   T_F  = n^2 / 2                          (only when gamma < infinity),
// with
//   E_C = sum_{C' subseteq C} x_{C'}                  (peers that can still
//                                                      become type C)
//   H_C = 1/(1-mu/gamma) sum_{C' !subseteq C}
//            (K - |C'| + mu/gamma) x_{C'}             (stored helping
//                                                      potential for C)
//   phi = the C^1 piecewise quadratic of Section VII (parameters d, beta):
//         phi(h) = 2d + 1/(2 beta) - h          on [0, 2d],
//                  (beta/2)(h - 2d - 1/beta)^2  on (2d, 2d + 1/beta],
//                  0                            beyond.
//
// For 0 < gamma <= mu (Eq. (43)) the variant W' replaces alpha by a
// constant p satisfying Eq. (44) and uses H'_C = sum_{C' !subseteq C}
// (K + 1 - |C'|) x_{C'}.
//
// The drift QW(x) = sum_{x'} q(x,x')[W(x') - W(x)] is evaluated by exact
// enumeration of the generator (core/generator.hpp). Tests and the E10
// ablation bench verify the Foster–Lyapunov inequality QW <= -xi n on
// heavy-load states, and show the alpha E_C phi(H_C) term is what rescues
// the drift when the helping potential H_S is small (Remark 11).
#pragma once

#include "core/generator.hpp"
#include "core/model.hpp"
#include "core/state.hpp"

namespace p2p {

struct LyapunovParams {
  double r = 0.1;      // per-|C| geometric weight, in (0, 1/2)
  double d = 10.0;     // phi knee location parameter, > 1
  double beta = 0.01;  // phi curvature, in (0, 1/2)
  double alpha = 0.9;  // weight of the potential term, in (1/2, 1)
  /// Scale constant p for the gamma <= mu variant; <= 0 means "derive the
  /// smallest p satisfying Eq. (44) automatically".
  double p = -1.0;
};

/// phi and phi' with parameters (d, beta).
double lyapunov_phi(double h, double d, double beta);
double lyapunov_phi_prime(double h, double d, double beta);

class LyapunovFunction {
 public:
  LyapunovFunction(SwarmParams params, LyapunovParams lp);

  /// W(x) (or W'(x) when gamma <= mu).
  double value(const TypeCountState& state) const;

  /// Exact drift QW(x) by transition enumeration.
  double drift(const TypeCountState& state) const;

  /// E_C(x): number of peers whose type is a subset of C.
  double e_term(const TypeCountState& state, PieceSet c) const;
  /// H_C(x) (or H'_C when gamma <= mu): stored helping potential.
  double h_term(const TypeCountState& state, PieceSet c) const;

  const LyapunovParams& lyapunov_params() const { return lp_; }
  const SwarmParams& swarm_params() const { return params_; }

  /// Suggested parameters satisfying the structural side conditions of
  /// Lemma 12 / Lemma 13 (d large enough, beta (K+g)^2/(1-g)^2 <= 1/alpha
  /// - 1, ...). These are workable defaults for numeric exploration, not
  /// the asymptotic constants of the proof.
  static LyapunovParams suggest(const SwarmParams& params);

 private:
  bool altruistic() const;  // gamma <= mu branch (variant W')

  SwarmParams params_;
  LyapunovParams lp_;
  double p_ = 1.0;  // resolved Eq. (44) constant (altruistic branch)
};

}  // namespace p2p
