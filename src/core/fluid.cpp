#include "core/fluid.hpp"

#include <algorithm>
#include <cmath>

namespace p2p {

FluidModel::FluidModel(SwarmParams params) : params_(std::move(params)) {
  P2P_ASSERT_MSG(params_.num_pieces() <= 16,
                 "fluid model supports K <= 16 (dense 2^K state)");
}

double FluidModel::total(const FluidState& y) {
  double n = 0;
  for (double v : y) n += v;
  return n;
}

FluidState FluidModel::point_mass(PieceSet type, double count) const {
  FluidState y(std::size_t{1} << params_.num_pieces(), 0.0);
  y[type.mask()] = count;
  return y;
}

FluidState FluidModel::derivative(const FluidState& y) const {
  const int k = params_.num_pieces();
  const std::size_t num_types = std::size_t{1} << k;
  P2P_ASSERT(y.size() == num_types);

  FluidState clamped = y;
  for (double& v : clamped) v = std::max(0.0, v);
  const double n = total(clamped);

  FluidState dy(num_types, 0.0);
  for (const auto& a : params_.arrivals()) {
    if (params_.immediate_departure() && a.type == PieceSet::full(k)) {
      continue;
    }
    dy[a.type.mask()] += a.rate;
  }
  if (!params_.immediate_departure()) {
    dy[num_types - 1] -=
        params_.seed_depart_rate() * clamped[num_types - 1];
  }
  if (n <= 0) return dy;

  // Pre-aggregate uploader mass per (piece, |S - C|) is state-dependent on
  // C, so we evaluate Gamma directly per (C, i): the fluid analogue of
  // Eq. (1).
  for (std::size_t m = 0; m + 1 < num_types; ++m) {
    if (clamped[m] <= 0) continue;
    const PieceSet c{m};
    for (int piece : c.complement(k)) {
      double peers = 0;
      for (std::size_t s = 0; s < num_types; ++s) {
        if (((s >> piece) & 1U) == 0 || clamped[s] <= 0) continue;
        peers += clamped[s] / static_cast<double>(PieceSet{s}.minus(c).size());
      }
      const double rate =
          clamped[m] / n *
          (params_.seed_rate() / (k - c.size()) +
           params_.contact_rate() * peers);
      if (rate <= 0) continue;
      dy[m] -= rate;
      const PieceSet next = c.with(piece);
      if (!(params_.immediate_departure() &&
            next == PieceSet::full(k))) {
        dy[next.mask()] += rate;
      }
    }
  }
  return dy;
}

FluidState FluidModel::integrate(
    const FluidState& y0, double horizon, double dt,
    const std::function<void(double, const FluidState&)>& observer) const {
  P2P_ASSERT(dt > 0 && horizon >= 0);
  FluidState y = y0;
  if (observer) observer(0.0, y);
  const auto clamp = [](FluidState& state) {
    for (double& v : state) v = std::max(0.0, v);
  };
  clamp(y);
  double t = 0;
  while (t < horizon) {
    const double h = std::min(dt, horizon - t);
    // Classic RK4.
    const FluidState k1 = derivative(y);
    FluidState y2 = y;
    for (std::size_t i = 0; i < y.size(); ++i) y2[i] += 0.5 * h * k1[i];
    const FluidState k2 = derivative(y2);
    FluidState y3 = y;
    for (std::size_t i = 0; i < y.size(); ++i) y3[i] += 0.5 * h * k2[i];
    const FluidState k3 = derivative(y3);
    FluidState y4 = y;
    for (std::size_t i = 0; i < y.size(); ++i) y4[i] += h * k3[i];
    const FluidState k4 = derivative(y4);
    for (std::size_t i = 0; i < y.size(); ++i) {
      y[i] += h / 6.0 * (k1[i] + 2 * k2[i] + 2 * k3[i] + k4[i]);
    }
    clamp(y);
    t += h;
    if (observer) observer(t, y);
  }
  return y;
}

}  // namespace p2p
