// Transition generator Q of the aggregate chain (Section III).
//
// Positive entries out of state x:
//   * q(x, x + e_C) = lambda_C                       (exogenous arrival)
//   * q(x, x - e_F) = gamma x_F                      (peer-seed departure)
//   * q(x, x - e_C + e_{C+i}) = Gamma_{C, C+i}       (piece download)
// with, for n >= 1 and i not in C (Eq. (1)):
//   Gamma_{C, C+i} = (x_C / n) [ Us / (K - |C|)
//                                + mu * sum_{S: i in S} x_S / |S - C| ].
// When gamma = infinity, a download completing a collection (C + i = F) is
// a departure instead.
//
// Both the exact Lyapunov drift (core/lyapunov.hpp) and the truncated
// stationary solver (ctmc/stationary.hpp) enumerate transitions through
// this header; the Gillespie samplers use equivalent event-level sampling
// and are cross-checked against it in tests.
#pragma once

#include "core/model.hpp"
#include "core/state.hpp"

namespace p2p {

enum class TransitionKind {
  kArrival,    // a type `to` peer arrives
  kDownload,   // a type `from` peer becomes type `to`
  kDeparture,  // a peer departs (from = F for dwell departures; from with
               // |from| = K-1 for gamma = infinity completions)
};

struct Transition {
  TransitionKind kind;
  PieceSet from;  // meaningful for kDownload / kDeparture
  PieceSet to;    // meaningful for kArrival / kDownload
  double rate;
};

/// Applies `t` to `state` in place.
inline void apply_transition(const Transition& t, TypeCountState& state) {
  switch (t.kind) {
    case TransitionKind::kArrival:
      state.add(t.to, +1);
      break;
    case TransitionKind::kDownload:
      state.transfer(t.from, t.to);
      break;
    case TransitionKind::kDeparture:
      state.add(t.from, -1);
      break;
  }
}

/// Aggregate download rate Gamma_{C, C+i} at state x (Eq. (1)).
inline double download_rate(const SwarmParams& params,
                            const TypeCountState& state, PieceSet c,
                            int piece) {
  P2P_ASSERT(!c.contains(piece));
  const std::int64_t n = state.total_peers();
  if (n < 1 || state.count(c) == 0) return 0;
  const int k = params.num_pieces();
  double per_target = params.seed_rate() / (k - c.size());
  // sum over uploader types S containing `piece` of x_S / |S - C|.
  double peers = 0;
  const std::size_t num_types = state.num_types();
  for (std::size_t m = 0; m < num_types; ++m) {
    if (((m >> piece) & 1U) == 0 || state.count(m) == 0) continue;
    const PieceSet s{m};
    peers += static_cast<double>(state.count(m)) / s.minus(c).size();
  }
  per_target += params.contact_rate() * peers;
  return static_cast<double>(state.count(c)) / static_cast<double>(n) *
         per_target;
}

/// Enumerates every positive-rate transition out of `state`, invoking
/// fn(const Transition&). Rates follow the generator above exactly.
template <typename Fn>
void for_each_transition(const SwarmParams& params,
                         const TypeCountState& state, Fn&& fn) {
  const int k = params.num_pieces();
  const PieceSet full = PieceSet::full(k);

  for (const auto& a : params.arrivals()) {
    if (a.rate <= 0) continue;
    if (params.immediate_departure() && a.type == full) continue;
    fn(Transition{TransitionKind::kArrival, PieceSet{}, a.type, a.rate});
  }

  if (!params.immediate_departure() && state.seeds() > 0) {
    fn(Transition{TransitionKind::kDeparture, full, PieceSet{},
                  params.seed_depart_rate() *
                      static_cast<double>(state.seeds())});
  }

  if (state.total_peers() < 1) return;
  const std::size_t num_types = state.num_types();
  for (std::size_t m = 0; m + 1 < num_types; ++m) {  // skip full mask
    if (state.count(m) == 0) continue;
    const PieceSet c{m};
    for (int piece : c.complement(k)) {
      const double rate = download_rate(params, state, c, piece);
      if (rate <= 0) continue;
      const PieceSet next = c.with(piece);
      if (params.immediate_departure() && next == full) {
        fn(Transition{TransitionKind::kDeparture, c, PieceSet{}, rate});
      } else {
        fn(Transition{TransitionKind::kDownload, c, next, rate});
      }
    }
  }
}

/// Total outflow rate -q(x, x); useful for uniformization.
inline double total_transition_rate(const SwarmParams& params,
                                    const TypeCountState& state) {
  double total = 0;
  for_each_transition(params, state,
                      [&](const Transition& t) { total += t.rate; });
  return total;
}

}  // namespace p2p
