#include "core/branching.hpp"

#include <cmath>

namespace p2p {

AbsMeans abs_means(const AbsParams& params) {
  P2P_ASSERT(params.xi >= 0 && params.xi < 1);
  P2P_ASSERT(params.contact_rate > 0);
  P2P_ASSERT(params.seed_depart_rate > 0);
  const double xi = params.xi;
  const double mg = params.seed_depart_rate == kInfiniteRate
                        ? 0.0
                        : params.contact_rate / params.seed_depart_rate;
  // u = mean type-(f) offspring of a (b) peer; v = of an (f) peer.
  const double u = (params.num_pieces - 1) / (1.0 - xi) + mg;
  const double v = mg;
  AbsMeans means;
  means.finite = xi * u + v < 1.0;
  if (!means.finite) return means;
  // Minimal nonnegative solution of m = 1 + M m with the rank-one matrix
  // M = [xi u, u; xi v, v]:
  const double scale = (1.0 + xi) / (1.0 - xi * u - v);
  means.m_b = 1.0 + scale * u;
  means.m_f = 1.0 + scale * v;
  return means;
}

std::optional<double> gifted_mean_descendants(const AbsParams& params,
                                              int pieces_on_arrival) {
  P2P_ASSERT(pieces_on_arrival >= 0 &&
             pieces_on_arrival <= params.num_pieces);
  const AbsMeans means = abs_means(params);
  if (!means.finite) return std::nullopt;
  const double mg = params.seed_depart_rate == kInfiniteRate
                        ? 0.0
                        : params.contact_rate / params.seed_depart_rate;
  const double lifetime_uploads =
      (params.num_pieces - pieces_on_arrival) / (1.0 - params.xi) + mg;
  return lifetime_uploads * (params.xi * means.m_b + means.m_f);
}

std::optional<double> dominating_upload_rate(const SwarmParams& params,
                                             int piece, double xi) {
  AbsParams abs{params.num_pieces(), params.contact_rate(),
                params.seed_depart_rate(), xi};
  const AbsMeans means = abs_means(abs);
  if (!means.finite) return std::nullopt;
  double rate = params.seed_rate() * (xi * means.m_b + means.m_f);
  for (const auto& a : params.arrivals()) {
    if (a.type.contains(piece) && a.rate > 0) {
      auto mg = gifted_mean_descendants(abs, a.type.size());
      rate += a.rate * *mg;
    }
  }
  return rate;
}

}  // namespace p2p
