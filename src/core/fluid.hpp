// Mean-field (fluid) approximation of the type-count chain.
//
// Related work the paper builds on (Massoulié & Vojnovic [11], and the
// worked examples of Section IV) reasons about the large-swarm limit: the
// expected drift of x becomes the ODE
//
//   dy_C/dt = lambda_C
//             + sum_{i in C} Gamma_{C-i, C}(y) - sum_{i not in C}
//               Gamma_{C, C+i}(y)
//             - gamma y_F [C = F]
//
// with Gamma the aggregate rates of Eq. (1) evaluated at real-valued
// populations y. The fluid path tracks the simulated mean closely once
// populations are large, and its one-club growth rate converges to
// Delta_S — the quantity Theorem 1 signs. We integrate with classic RK4
// and adaptive substepping on the (smooth) right-hand side.
#pragma once

#include <functional>
#include <vector>

#include "core/model.hpp"

namespace p2p {

/// Real-valued population vector indexed by piece-set mask (size 2^K).
using FluidState = std::vector<double>;

class FluidModel {
 public:
  explicit FluidModel(SwarmParams params);

  int num_pieces() const { return params_.num_pieces(); }
  const SwarmParams& params() const { return params_; }

  /// Right-hand side dy/dt at state y. y must have size 2^K and be
  /// componentwise >= 0 (small negative values from integration error are
  /// clamped internally).
  FluidState derivative(const FluidState& y) const;

  /// RK4 integration from `y0` over [0, horizon] with fixed step `dt`;
  /// invokes observer(t, y) after every step (and at t = 0). States are
  /// clamped at zero (populations cannot go negative).
  FluidState integrate(
      const FluidState& y0, double horizon, double dt,
      const std::function<void(double, const FluidState&)>& observer =
          nullptr) const;

  /// Total population sum of y.
  static double total(const FluidState& y);

  /// A fluid state with `count` peers of the given type.
  FluidState point_mass(PieceSet type, double count) const;

 private:
  SwarmParams params_;
};

}  // namespace p2p
