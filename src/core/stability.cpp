#include "core/stability.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace p2p {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

std::string to_string(Stability s) {
  switch (s) {
    case Stability::kPositiveRecurrent:
      return "positive-recurrent";
    case Stability::kTransient:
      return "transient";
    case Stability::kBorderline:
      return "borderline";
  }
  return "?";
}

double delta_S(const SwarmParamsView& params, PieceSet excluded) {
  const int k = params.num_pieces;
  P2P_ASSERT_MSG(!(excluded == PieceSet::full(k)), "S must be a proper subset");
  const double g = params.mu_over_gamma();
  P2P_ASSERT_MSG(g < 1.0, "delta_S requires mu < gamma");
  double inside = 0;   // sum_{C subset S} lambda_C
  double outside = 0;  // sum_{C !subset S} lambda_C (K - |C| + mu/gamma)
  for (const auto& a : params.arrivals) {
    if (a.type.is_subset_of(excluded)) {
      inside += a.rate;
    } else {
      outside += a.rate * (k - a.type.size() + g);
    }
  }
  return inside - (params.seed_rate + outside) / (1.0 - g);
}

double delta_S(const SwarmParams& params, PieceSet excluded) {
  return delta_S(params.view(), excluded);
}

double piece_threshold(const SwarmParamsView& params, int piece) {
  const int k = params.num_pieces;
  const double g = params.mu_over_gamma();
  P2P_ASSERT_MSG(g < 1.0, "piece_threshold requires mu < gamma");
  double sum = params.seed_rate;
  for (const auto& a : params.arrivals) {
    if (a.type.contains(piece)) sum += a.rate * (k + 1 - a.type.size());
  }
  return sum / (1.0 - g);
}

double piece_threshold(const SwarmParams& params, int piece) {
  return piece_threshold(params.view(), piece);
}

std::string StabilityReport::to_string() const {
  std::string s = "StabilityReport{" + p2p::to_string(verdict);
  if (altruistic_branch) {
    s += ", branch=gamma<=mu";
  } else {
    s += ", critical_piece=" + std::to_string(critical_piece + 1) +
         ", margin=" + std::to_string(margin) +
         ", worst_delta=" + std::to_string(worst_delta);
  }
  return s + "}";
}

StabilityReport classify(const SwarmParamsView& params) {
  // A view may borrow a raw scratch buffer that never went through
  // SwarmParams's constructor; classifying an invalid tuple must abort
  // with the same messages regardless of which path built it.
  params.validate();
  StabilityReport report;
  const int k = params.num_pieces;
  const double mu = params.contact_rate;
  const double gamma = params.seed_depart_rate;

  if (gamma <= mu) {
    // Altruistic branch: each peer seed uploads >= 1 extra piece on
    // average. Stable iff every piece can enter.
    report.altruistic_branch = true;
    report.verdict = params.all_pieces_can_enter()
                         ? Stability::kPositiveRecurrent
                         : Stability::kTransient;
    for (int piece = 0; piece < k; ++piece) {
      if (!params.piece_can_enter(piece)) {
        report.critical_piece = piece;
        break;
      }
    }
    return report;
  }

  // mu < gamma branch: compare lambda_total to each per-piece threshold.
  // A piece that cannot enter at all has threshold 0 < lambda_total, so it
  // is covered by the same comparison.
  const double lambda_total = params.total_arrival_rate();
  report.margin = kInf;
  for (int piece = 0; piece < k; ++piece) {
    const double margin = piece_threshold(params, piece) - lambda_total;
    if (margin < report.margin) {
      report.margin = margin;
      report.critical_piece = piece;
    }
  }
  report.worst_delta =
      delta_S(params, PieceSet::full(k).without(report.critical_piece));
  if (report.margin > 0) {
    report.verdict = Stability::kPositiveRecurrent;
  } else if (report.margin < 0) {
    report.verdict = Stability::kTransient;
  } else {
    report.verdict = Stability::kBorderline;
  }
  return report;
}

StabilityReport classify(const SwarmParams& params) {
  return classify(params.view());
}

double min_stabilizing_seed_rate(const SwarmParamsView& params) {
  const int k = params.num_pieces;
  const double g = params.mu_over_gamma();
  if (params.seed_depart_rate <= params.contact_rate) {
    // Altruistic branch: Us > 0 suffices (and Us = 0 works if arrivals
    // already cover every piece).
    return params.all_pieces_can_enter() ? 0.0
                                         : std::nextafter(0.0, 1.0);
  }
  const double lambda_total = params.total_arrival_rate();
  double needed = 0;
  for (int piece = 0; piece < k; ++piece) {
    double contributed = 0;
    for (const auto& a : params.arrivals) {
      if (a.type.contains(piece)) {
        contributed += a.rate * (k + 1 - a.type.size());
      }
    }
    needed = std::max(needed, lambda_total * (1.0 - g) - contributed);
  }
  return std::max(0.0, needed);
}

double min_stabilizing_seed_rate(const SwarmParams& params) {
  return min_stabilizing_seed_rate(params.view());
}

double max_stabilizing_seed_depart_rate(const SwarmParams& params) {
  const int k = params.num_pieces();
  const double mu = params.contact_rate();
  const double lambda_total = params.total_arrival_rate();
  // Condition per piece with g = mu/gamma in (0,1):
  //   lambda_total (1 - g) < Us + A_k + g B_k,
  // where A_k = sum_{C: k in C} lambda_C (K - |C|), B_k = sum_{C: k in C}
  // lambda_C. Solving: g > (lambda_total - Us - A_k) / (lambda_total + B_k).
  double g_star = 0;
  for (int piece = 0; piece < k; ++piece) {
    double a = 0, b = 0;
    for (const auto& spec : params.arrivals()) {
      if (spec.type.contains(piece)) {
        a += spec.rate * (k - spec.type.size());
        b += spec.rate;
      }
    }
    const double num = lambda_total - params.seed_rate() - a;
    g_star = std::max(g_star, num / (lambda_total + b));
  }
  if (g_star <= 0) return kInf;  // stable even with immediate departure
  // g_star < 1 always: numerator < lambda_total <= denominator. Any
  // gamma < mu/g_star works (and all gamma <= mu via the other branch when
  // pieces can enter).
  return mu / g_star;
}

double critical_load_scale(const SwarmParams& params) {
  const int k = params.num_pieces();
  const double g = params.mu_over_gamma();
  if (params.seed_depart_rate() <= params.contact_rate()) {
    return params.all_pieces_can_enter() ? kInf : 0.0;
  }
  const double lambda_total = params.total_arrival_rate();
  // Scaling arrivals by s: s*lambda_total (1-g) <> Us + s*T_k with
  // T_k = sum_{C: k in C} lambda_C (K + 1 - |C|). Critical s solves
  // equality; if lambda_total (1-g) <= T_k the load never catches up.
  double s_star = kInf;
  for (int piece = 0; piece < k; ++piece) {
    double t = 0;
    for (const auto& a : params.arrivals()) {
      if (a.type.contains(piece)) t += a.rate * (k + 1 - a.type.size());
    }
    const double denom = lambda_total * (1.0 - g) - t;
    if (denom > 0) {
      s_star = std::min(s_star, params.seed_rate() / denom);
    }
  }
  return s_star;
}

}  // namespace p2p
