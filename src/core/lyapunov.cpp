#include "core/lyapunov.hpp"

#include <algorithm>
#include <cmath>

namespace p2p {

double lyapunov_phi(double h, double d, double beta) {
  P2P_ASSERT(h >= 0);
  if (h <= 2 * d) return 2 * d + 1 / (2 * beta) - h;
  if (h <= 2 * d + 1 / beta) {
    const double t = h - 2 * d - 1 / beta;
    return beta / 2 * t * t;
  }
  return 0;
}

double lyapunov_phi_prime(double h, double d, double beta) {
  P2P_ASSERT(h >= 0);
  if (h <= 2 * d) return -1;
  if (h <= 2 * d + 1 / beta) return beta * (h - 2 * d - 1 / beta);
  return 0;
}

LyapunovFunction::LyapunovFunction(SwarmParams params, LyapunovParams lp)
    : params_(std::move(params)), lp_(lp) {
  P2P_ASSERT(lp_.r > 0 && lp_.r < 1);
  P2P_ASSERT(lp_.d > 1);
  P2P_ASSERT(lp_.beta > 0 && lp_.beta < 0.5);
  P2P_ASSERT(lp_.alpha > 0 && lp_.alpha < 1);
  if (altruistic()) {
    if (lp_.p > 0) {
      p_ = lp_.p;
    } else {
      // Smallest p with lambda_{E_C} - p (Us + lambda*_{H_C}) < 0 for all
      // C != F (Eq. (44)), padded by 2x.
      const int k = params_.num_pieces();
      const double g = params_.contact_rate() / params_.seed_depart_rate();
      double p_needed = 0;
      const PieceSet full = PieceSet::full(k);
      for_each_subset(full, [&](PieceSet c) {
        if (c == full) return;
        double inside = 0, helping = params_.seed_rate();
        for (const auto& a : params_.arrivals()) {
          if (a.type.is_subset_of(c)) {
            inside += a.rate;
          } else {
            helping += a.rate * (k - a.type.size() + g);
          }
        }
        P2P_ASSERT_MSG(helping > 0,
                       "Eq. (44) requires Us + lambda*_{H_C} > 0; some piece "
                       "cannot enter the system");
        p_needed = std::max(p_needed, inside / helping);
      });
      p_ = 2 * p_needed + 1;
    }
  }
}

bool LyapunovFunction::altruistic() const {
  return params_.seed_depart_rate() <= params_.contact_rate();
}

double LyapunovFunction::e_term(const TypeCountState& state,
                                PieceSet c) const {
  double e = 0;
  for_each_subset(c, [&](PieceSet sub) {
    e += static_cast<double>(state.count(sub));
  });
  return e;
}

double LyapunovFunction::h_term(const TypeCountState& state,
                                PieceSet c) const {
  const int k = params_.num_pieces();
  const double g = params_.mu_over_gamma();
  double h = 0;
  for (std::size_t m = 0; m < state.num_types(); ++m) {
    if (state.count(m) == 0) continue;
    const PieceSet type{m};
    if (type.is_subset_of(c)) continue;
    if (altruistic()) {
      h += (k + 1 - type.size()) * static_cast<double>(state.count(m));
    } else {
      h += (k - type.size() + g) * static_cast<double>(state.count(m));
    }
  }
  if (!altruistic()) h /= 1.0 - g;
  return h;
}

double LyapunovFunction::value(const TypeCountState& state) const {
  const int k = params_.num_pieces();
  const std::size_t num_types = state.num_types();

  // E_C for all C at once: subset-sum (zeta) transform over the mask
  // lattice, O(K 2^K).
  std::vector<double> e(num_types);
  for (std::size_t m = 0; m < num_types; ++m) {
    e[m] = static_cast<double>(state.count(m));
  }
  for (int bit = 0; bit < k; ++bit) {
    for (std::size_t m = 0; m < num_types; ++m) {
      if ((m >> bit) & 1U) e[m] += e[m ^ (std::size_t{1} << bit)];
    }
  }

  // H_C for all C: total weighted count minus subset-sum of the weights.
  const double g = params_.mu_over_gamma();
  std::vector<double> hsub(num_types);
  double wtotal = 0;
  for (std::size_t m = 0; m < num_types; ++m) {
    const PieceSet type{m};
    const double weight = altruistic() ? (k + 1 - type.size())
                                       : (k - type.size() + g);
    hsub[m] = weight * static_cast<double>(state.count(m));
    wtotal += hsub[m];
  }
  for (int bit = 0; bit < k; ++bit) {
    for (std::size_t m = 0; m < num_types; ++m) {
      if ((m >> bit) & 1U) hsub[m] += hsub[m ^ (std::size_t{1} << bit)];
    }
  }

  const double weight_coeff = altruistic() ? p_ : lp_.alpha;
  const double n = static_cast<double>(state.total_peers());
  double w = 0;
  for (std::size_t m = 0; m < num_types; ++m) {
    const PieceSet c{m};
    const double rpow = std::pow(lp_.r, c.size());
    if (m + 1 == num_types) {  // C = F
      if (!params_.immediate_departure()) w += rpow * n * n / 2;
      continue;
    }
    double h = wtotal - hsub[m];
    if (!altruistic()) h /= 1.0 - g;
    w += rpow * (e[m] * e[m] / 2 +
                 weight_coeff * e[m] * lyapunov_phi(h, lp_.d, lp_.beta));
  }
  return w;
}

double LyapunovFunction::drift(const TypeCountState& state) const {
  const double w0 = value(state);
  double drift = 0;
  TypeCountState scratch = state;
  for_each_transition(params_, state, [&](const Transition& t) {
    apply_transition(t, scratch);
    drift += t.rate * (value(scratch) - w0);
    // Undo.
    switch (t.kind) {
      case TransitionKind::kArrival:
        scratch.add(t.to, -1);
        break;
      case TransitionKind::kDownload:
        scratch.transfer(t.to, t.from);
        break;
      case TransitionKind::kDeparture:
        scratch.add(t.from, +1);
        break;
    }
  });
  return drift;
}

LyapunovParams LyapunovFunction::suggest(const SwarmParams& params) {
  LyapunovParams lp;
  const int k = params.num_pieces();
  const double g = params.mu_over_gamma();
  lp.alpha = 0.9;
  if (g < 1) {
    const double jump = (k + g) / (1 - g);
    lp.beta = std::min(0.01, (1 / lp.alpha - 1) / (jump * jump));
    lp.d = std::max({2 * (1 + g) / (1 - g), static_cast<double>(k) + 2.0,
                     10.0});
  } else {
    lp.beta = std::min(0.01, 0.5 / ((k + 1.0) * (k + 1.0)));
    lp.d = std::max(static_cast<double>(k) + 2.0, 10.0);
  }
  lp.r = 0.1;
  return lp;
}

}  // namespace p2p
