// TypeCountState: the aggregate state vector x = (x_C : C subseteq F) of
// the Zhu–Hajek Markov chain — the number of peers currently holding each
// piece subset. Dense array indexed by bitmask; practical for K <= 16.
//
// When gamma = infinity the paper drops the F coordinate; we keep the slot
// (it simply stays zero) so one representation serves both regimes.
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

#include "util/assert.hpp"
#include "util/piece_set.hpp"

namespace p2p {

class TypeCountState {
 public:
  explicit TypeCountState(int num_pieces)
      : num_pieces_(num_pieces),
        counts_(std::size_t{1} << num_pieces, 0) {
    P2P_ASSERT_MSG(num_pieces >= 1 && num_pieces <= 16,
                   "TypeCountState supports K in [1, 16]");
  }

  int num_pieces() const { return num_pieces_; }
  std::size_t num_types() const { return counts_.size(); }

  std::int64_t count(PieceSet type) const { return counts_[type.mask()]; }
  std::int64_t count(std::uint64_t mask) const { return counts_[mask]; }

  void add(PieceSet type, std::int64_t delta) {
    counts_[type.mask()] += delta;
    total_ += delta;
    P2P_ASSERT(counts_[type.mask()] >= 0);
  }

  /// Moves one peer from type `from` to type `to` (a piece download).
  void transfer(PieceSet from, PieceSet to) {
    P2P_ASSERT(counts_[from.mask()] >= 1);
    counts_[from.mask()] -= 1;
    counts_[to.mask()] += 1;
  }

  /// Total number of peers n (including peer seeds).
  std::int64_t total_peers() const { return total_; }

  /// Number of peer seeds x_F.
  std::int64_t seeds() const { return counts_.back(); }

  /// Number of peers holding piece `piece`.
  std::int64_t holders_of(int piece) const {
    std::int64_t holders = 0;
    for (std::size_t m = 0; m < counts_.size(); ++m) {
      if ((m >> piece) & 1U) holders += counts_[m];
    }
    return holders;
  }

  const std::vector<std::int64_t>& raw() const { return counts_; }

  bool operator==(const TypeCountState&) const = default;

 private:
  int num_pieces_;
  std::vector<std::int64_t> counts_;
  std::int64_t total_ = 0;
};

}  // namespace p2p
