// Closed-form stability theory: Theorem 1 of Zhu & Hajek and the derived
// provisioning solvers.
//
// For 0 < mu < gamma <= infinity the stability region is characterized by
// the per-piece thresholds (Eqs. (2)/(3))
//
//   lambda_total  <>  [ Us + sum_{C: k in C} lambda_C (K + 1 - |C|) ]
//                     / (1 - mu/gamma)
//
// or equivalently by Delta_S < 0 for all S != F (Eq. (4)):
//
//   Delta_S = sum_{C subset S} lambda_C
//             - [ Us + sum_{C !subset S} lambda_C (K - |C| + mu/gamma) ]
//               / (1 - mu/gamma).
//
// For 0 < gamma <= mu the system is positive recurrent iff every piece can
// enter the system (Us > 0 or some positive-rate arrival type contains it).
#pragma once

#include <string>
#include <vector>

#include "core/model.hpp"

namespace p2p {

enum class Stability {
  kPositiveRecurrent,
  kTransient,
  kBorderline,  // equality in (3) for some k; Theorem 1 leaves this open
};

std::string to_string(Stability s);

/// Delta_S of Eq. (4). Requires mu < gamma (otherwise the expression is
/// not meaningful; the classifier handles gamma <= mu separately).
/// `excluded` is the set S (peers of types inside S form the heavy load;
/// S = F - {k} is the "one club" missing piece k). The SwarmParamsView
/// overloads are the allocation-free forms the sweep engine's hot loop
/// uses; the SwarmParams forms forward to them.
double delta_S(const SwarmParamsView& params, PieceSet excluded);
double delta_S(const SwarmParams& params, PieceSet excluded);

/// Right-hand side of Eqs. (2)/(3) for piece k:
///   [Us + sum_{C: k in C} lambda_C (K + 1 - |C|)] / (1 - mu/gamma).
/// The system is stable iff lambda_total is below this for all k.
double piece_threshold(const SwarmParamsView& params, int piece);
double piece_threshold(const SwarmParams& params, int piece);

struct StabilityReport {
  Stability verdict = Stability::kBorderline;
  /// Piece attaining the minimum stability margin (the candidate missing
  /// piece for the one-club), -1 when the gamma <= mu branch applies.
  int critical_piece = -1;
  /// min_k (threshold_k - lambda_total); positive => recurrent,
  /// negative => transient (for the mu < gamma branch).
  double margin = 0;
  /// Worst-case Delta_S over all S != F (mu < gamma branch only);
  /// negative for recurrent systems.
  double worst_delta = 0;
  /// Which branch of Theorem 1 applied.
  bool altruistic_branch = false;  // true iff gamma <= mu
  std::string to_string() const;
};

/// Classifies the parameter point per Theorem 1. The view overload
/// validates the tuple first (a view built from a scratch buffer never
/// went through SwarmParams's constructor) — the sweep engine's
/// allocation-free path must abort on a bad cell with the same messages
/// the owning path does.
StabilityReport classify(const SwarmParamsView& params);
StabilityReport classify(const SwarmParams& params);

// --- Provisioning solvers (inversions of Theorem 1's boundary) ---

/// Smallest fixed-seed rate Us making the system (strictly) stable with
/// the given arrivals, mu, gamma; 0 if stable already at Us = 0. Requires
/// mu < gamma (for gamma <= mu any Us works once pieces can enter). The
/// view overload is the allocation-free form the live monitor's advisory
/// loop calls once per tick (analysis/provisioning.hpp wraps it).
double min_stabilizing_seed_rate(const SwarmParamsView& params);
double min_stabilizing_seed_rate(const SwarmParams& params);

/// Largest gamma (smallest mean dwell 1/gamma) keeping the system stable,
/// holding everything else fixed. Returns +infinity when the system is
/// stable even with immediate departures. The paper's corollary guarantees
/// the result is always >= mu when all pieces can enter.
double max_stabilizing_seed_depart_rate(const SwarmParams& params);

/// Critical multiplicative load: the factor s* such that scaling every
/// arrival rate by s < s* is stable and s > s* is transient. Returns
/// +infinity when no finite scaling destabilizes (e.g. gamma <= mu with
/// arrival types covering all pieces).
double critical_load_scale(const SwarmParams& params);

}  // namespace p2p
