#include "core/coding_stability.hpp"

#include <limits>

#include "util/assert.hpp"

namespace p2p {

double coded_contact_rate(int field_size, double contact_rate) {
  P2P_ASSERT(field_size >= 2);
  return (1.0 - 1.0 / field_size) * contact_rate;
}

std::string CodedGiftThresholds::to_string() const {
  return "CodedGiftThresholds{transient_below=" +
         std::to_string(transient_below) +
         ", recurrent_above=" + std::to_string(recurrent_above) +
         ", recurrent_above_exact=" + std::to_string(recurrent_above_exact) +
         "}";
}

CodedGiftThresholds coded_gift_thresholds(int field_size, int num_pieces) {
  P2P_ASSERT(field_size >= 2);
  P2P_ASSERT(num_pieces >= 1);
  const double q = field_size;
  const double k = num_pieces;
  CodedGiftThresholds t;
  t.transient_below = q / ((q - 1) * k);
  t.recurrent_above = q * q / ((q - 1) * (q - 1) * k);
  const double frac = 1.0 - 1.0 / q;
  t.recurrent_above_exact = 1.0 / (frac * frac * (k - 1 + q / (q - 1)));
  return t;
}

double coded_transience_threshold(int field_size, int num_pieces,
                                  double seed_rate, double lambda1,
                                  double mu_over_gamma) {
  P2P_ASSERT(field_size >= 2);
  P2P_ASSERT(mu_over_gamma >= 0 && mu_over_gamma < 1);
  // Arrivals whose vector falls outside a fixed hyperplane V- have rate
  // lambda1 (1 - 1/q) and dim(V) = 1, contributing K - 1 + 1 = K each.
  const double frac = 1.0 - 1.0 / field_size;
  return (seed_rate + lambda1 * frac * num_pieces) / (1.0 - mu_over_gamma);
}

double coded_recurrence_threshold(int field_size, int num_pieces,
                                  double seed_rate, double lambda1,
                                  double mu, double gamma) {
  P2P_ASSERT(field_size >= 2);
  const double q = field_size;
  const double frac = 1.0 - 1.0 / q;
  const double mu_tilde = frac * mu;
  const double g = gamma == std::numeric_limits<double>::infinity()
                       ? 0.0
                       : mu_tilde / gamma;
  P2P_ASSERT_MSG(g < 1, "requires mu~ < gamma");
  return (seed_rate +
          lambda1 * frac * (num_pieces - 1 + q / (q - 1))) *
         frac / (1.0 - g);
}

}  // namespace p2p
