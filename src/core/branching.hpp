// The autonomous branching system (ABS) of Section VI.
//
// The transience proof couples the spread of the missing piece (piece one)
// to a two-type branching process: type (b) "infected" peers (got piece one
// after arrival, still downloading K-1 pieces at rate mu(1-xi)) and type
// (f) former one-club peers (peer seeds dwelling Exp(gamma)). Both spawn
// type-(b) offspring at rate xi*mu and type-(f) offspring at rate mu while
// alive. Gifted peers (arrive holding piece one with |C| pieces) spawn the
// same way during a lifetime of (K-|C|)/(mu(1-xi)) + 1/gamma on average.
//
// This header exposes the closed-form mean family sizes (m_b, m_f, m_g)
// and the aggregate appearance rate of the dominating process \hat{D}
// (Corollary 3). The matching stochastic simulator lives in
// queueing/branching_sim.hpp; tests cross-validate the two.
#pragma once

#include <optional>

#include "core/model.hpp"

namespace p2p {

struct AbsParams {
  int num_pieces = 1;   // K
  double contact_rate;  // mu
  double seed_depart_rate;  // gamma (may be +infinity)
  double xi = 0;        // coupling slack parameter, in [0, 1)
};

struct AbsMeans {
  /// 1 + mean number of descendants of a group-(b) peer.
  double m_b = 0;
  /// 1 + mean number of descendants of a group-(f) peer.
  double m_f = 0;
  /// True iff the branching process is subcritical (finite means), i.e.
  /// xi((K-1)/(1-xi) + mu/gamma) + mu/gamma < 1 (Eq. (6)).
  bool finite = false;
};

/// Solves the 2x2 mean system of Section VI. Requires mu < gamma for
/// finiteness (mu/gamma < 1 necessary).
AbsMeans abs_means(const AbsParams& params);

/// Mean total number of descendants of a gifted peer arriving with
/// `pieces_on_arrival` pieces (|C| in the paper), excluding itself:
///   m_g(C) = ((K - |C|)/(1 - xi) + mu/gamma) (xi m_b + m_f).
/// Returns nullopt when the branching process is supercritical.
std::optional<double> gifted_mean_descendants(const AbsParams& params,
                                              int pieces_on_arrival);

/// Long-run appearance rate of the dominating compound Poisson process
/// \hat{\hat{D}} in Corollary 3:
///   Us (xi m_b + m_f) + sum_{C: piece in C} lambda_C m_g(C).
/// As xi -> 0 this converges to the per-piece threshold of Theorem 1,
///   [Us + sum_{C: k in C} lambda_C (K - |C| + mu/gamma)] / (1 - mu/gamma),
/// which is what makes the coupling argument tight. Returns nullopt when
/// supercritical.
std::optional<double> dominating_upload_rate(const SwarmParams& params,
                                             int piece, double xi);

}  // namespace p2p
