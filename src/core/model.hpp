// SwarmParams: the parameter tuple of the Zhu–Hajek P2P model.
//
//   * K pieces (file split), pieces indexed 0..K-1.
//   * Fixed seed with contact-upload rate Us >= 0 (random peer contact +
//     random useful piece selection). The fixed seed is not a peer.
//   * Every peer contacts a uniformly random peer at rate mu > 0 and
//     uploads one uniformly random useful piece, if any.
//   * Type-C peers (holding piece set C on arrival) arrive as independent
//     Poisson processes with rates lambda_C.
//   * A peer holding all K pieces is a peer seed; it dwells for an
//     Exp(gamma) time before departing. gamma = +infinity means immediate
//     departure (and then lambda_F must be zero).
//
// The same struct parameterizes the aggregate type-count CTMC
// (ctmc/typecount_chain.hpp), the per-peer simulator (sim/swarm.hpp) and
// the closed-form stability theory (core/stability.hpp).
#pragma once

#include <limits>
#include <span>
#include <string>
#include <vector>

#include "util/assert.hpp"
#include "util/piece_set.hpp"

namespace p2p {

/// One exogenous Poisson arrival stream: peers of type `type` arrive at
/// rate `rate`.
struct ArrivalSpec {
  PieceSet type;
  double rate = 0;
};

inline constexpr double kInfiniteRate = std::numeric_limits<double>::infinity();

/// A non-owning view of the model-parameter tuple. The sweep engine's
/// theory-only hot loop classifies millions of cells per second, and
/// materializing a SwarmParams per cell means a heap-allocated arrival
/// vector per cell; the view instead borrows an arrival span (typically
/// a per-thread scratch buffer). validate() enforces exactly the
/// invariants SwarmParams does — SwarmParams::validate() delegates here,
/// so the owning and borrowing paths cannot drift.
struct SwarmParamsView {
  int num_pieces = 0;
  /// Us: fixed-seed contact-upload rate.
  double seed_rate = 0;
  /// mu: per-peer contact-upload rate.
  double contact_rate = 0;
  /// gamma: peer-seed departure rate; +infinity = depart on completion.
  double seed_depart_rate = 0;
  std::span<const ArrivalSpec> arrivals;

  /// True iff gamma = infinity (peers depart the instant they complete).
  bool immediate_departure() const {
    return seed_depart_rate == kInfiniteRate;
  }

  /// mu/gamma in [0, 1) when mu < gamma; 0 when gamma = infinity.
  double mu_over_gamma() const {
    return immediate_departure() ? 0.0 : contact_rate / seed_depart_rate;
  }

  /// lambda_total = sum of all arrival rates (> 0 by model assumption).
  double total_arrival_rate() const {
    double total = 0;
    for (const auto& a : arrivals) total += a.rate;
    return total;
  }

  /// True iff copies of piece k can enter the system: Us > 0 or some
  /// arrival type contains k with positive rate. (Theorem 1's entry
  /// condition for the gamma <= mu case.)
  bool piece_can_enter(int piece) const {
    if (seed_rate > 0) return true;
    for (const auto& a : arrivals) {
      if (a.rate > 0 && a.type.contains(piece)) return true;
    }
    return false;
  }

  bool all_pieces_can_enter() const {
    for (int k = 0; k < num_pieces; ++k) {
      if (!piece_can_enter(k)) return false;
    }
    return true;
  }

  /// Aborts unless the tuple satisfies the model assumptions (the same
  /// checks SwarmParams runs at construction).
  void validate() const {
    P2P_ASSERT_MSG(num_pieces >= 1 && num_pieces <= kMaxPieces,
                   "K must be in [1, 64]");
    P2P_ASSERT_MSG(seed_rate >= 0, "Us must be nonnegative");
    P2P_ASSERT_MSG(contact_rate > 0, "mu must be positive");
    P2P_ASSERT_MSG(seed_depart_rate > 0, "gamma must be positive");
    const PieceSet full = PieceSet::full(num_pieces);
    double total = 0;
    for (const auto& a : arrivals) {
      P2P_ASSERT_MSG(a.rate >= 0, "arrival rates must be nonnegative");
      P2P_ASSERT_MSG(a.type.is_subset_of(full),
                     "arrival type must be a subset of the K pieces");
      if (immediate_departure()) {
        P2P_ASSERT_MSG(!(a.type == full) || a.rate == 0,
                       "lambda_F must be 0 when gamma = infinity");
      }
      total += a.rate;
    }
    P2P_ASSERT_MSG(total > 0, "total arrival rate must be positive");
  }
};

class SwarmParams {
 public:
  SwarmParams(int num_pieces, double seed_rate, double contact_rate,
              double seed_depart_rate, std::vector<ArrivalSpec> arrivals)
      : num_pieces_(num_pieces),
        seed_rate_(seed_rate),
        contact_rate_(contact_rate),
        seed_depart_rate_(seed_depart_rate),
        arrivals_(std::move(arrivals)) {
    validate();
  }

  int num_pieces() const { return num_pieces_; }
  /// Us: fixed-seed contact-upload rate.
  double seed_rate() const { return seed_rate_; }
  /// mu: per-peer contact-upload rate.
  double contact_rate() const { return contact_rate_; }
  /// gamma: peer-seed departure rate; +infinity = depart on completion.
  double seed_depart_rate() const { return seed_depart_rate_; }
  /// True iff gamma = infinity (peers depart the instant they complete).
  bool immediate_departure() const {
    return seed_depart_rate_ == kInfiniteRate;
  }

  const std::vector<ArrivalSpec>& arrivals() const { return arrivals_; }

  /// The borrowing view of this tuple (valid while *this lives). The
  /// shared accessors below delegate to it, so the two representations
  /// answer every model question identically.
  SwarmParamsView view() const {
    return SwarmParamsView{num_pieces_, seed_rate_, contact_rate_,
                           seed_depart_rate_, arrivals_};
  }

  /// lambda_total = sum of all arrival rates (> 0 by model assumption).
  double total_arrival_rate() const { return view().total_arrival_rate(); }

  /// lambda_C for a specific type (0 if not listed).
  double arrival_rate(PieceSet type) const {
    double total = 0;
    for (const auto& a : arrivals_) {
      if (a.type == type) total += a.rate;
    }
    return total;
  }

  /// True iff copies of piece k can enter the system: Us > 0 or some
  /// arrival type contains k with positive rate. (Theorem 1's entry
  /// condition for the gamma <= mu case.)
  bool piece_can_enter(int piece) const {
    return view().piece_can_enter(piece);
  }

  bool all_pieces_can_enter() const { return view().all_pieces_can_enter(); }

  /// mu/gamma in [0, 1) when mu < gamma; 0 when gamma = infinity.
  double mu_over_gamma() const { return view().mu_over_gamma(); }

  /// Returns a copy with every arrival rate scaled by `s` (used by the
  /// critical-load solvers and the region benches).
  SwarmParams with_arrivals_scaled(double s) const {
    auto copy = *this;
    for (auto& a : copy.arrivals_) a.rate *= s;
    return copy;
  }
  SwarmParams with_seed_rate(double us) const {
    auto copy = *this;
    copy.seed_rate_ = us;
    copy.validate();
    return copy;
  }
  SwarmParams with_seed_depart_rate(double gamma) const {
    auto copy = *this;
    copy.seed_depart_rate_ = gamma;
    copy.validate();
    return copy;
  }

  // --- Named constructors for the paper's three worked examples ---

  /// Example 1 / Fig. 1(a): K = 1, empty arrivals at rate lambda0, fixed
  /// seed Us, dwell rate gamma.
  static SwarmParams example1(double lambda0, double us, double mu,
                              double gamma) {
    return SwarmParams(1, us, mu, gamma, {{PieceSet{}, lambda0}});
  }

  /// Example 2 / Fig. 1(b): K = 4, arrivals of type {1,2} at lambda12 and
  /// type {3,4} at lambda34, no fixed seed, immediate departure.
  static SwarmParams example2(double lambda12, double lambda34, double mu) {
    return SwarmParams(
        4, 0.0, mu, kInfiniteRate,
        {{PieceSet::single(0).with(1), lambda12},
         {PieceSet::single(2).with(3), lambda34}});
  }

  /// Example 3 / Fig. 1(c): K = 3, single-piece arrivals lambda1..3, no
  /// fixed seed, dwell rate gamma.
  static SwarmParams example3(double lambda1, double lambda2, double lambda3,
                              double mu, double gamma) {
    return SwarmParams(3, 0.0, mu, gamma,
                       {{PieceSet::single(0), lambda1},
                        {PieceSet::single(1), lambda2},
                        {PieceSet::single(2), lambda3}});
  }

  // --- Named arrival mixes (unit-total typed streams) ---
  //
  // A "mix" is a list of ArrivalSpecs whose rates are *fractions* summing
  // to 1: multiply every rate by lambda_total to obtain an arrival stream
  // of that composition. The scenario layer (engine/scenario.hpp)
  // interpolates between the empty-arrival stream and a named mix.

  /// Rescales `mix` so its rates sum to 1. Total must be positive.
  static std::vector<ArrivalSpec> normalized_mix(std::vector<ArrivalSpec> mix) {
    double total = 0;
    for (const auto& a : mix) {
      P2P_ASSERT_MSG(a.rate >= 0, "mix weights must be nonnegative");
      total += a.rate;
    }
    P2P_ASSERT_MSG(total > 0, "mix weights must have a positive sum");
    for (auto& a : mix) a.rate /= total;
    return mix;
  }

  /// Example 2's paired-halves mix over K = 4: type {1,2} at relative
  /// weight w12, type {3,4} at w34 (paper numbering; fractions normalized).
  static std::vector<ArrivalSpec> example2_mix(double w12, double w34) {
    return normalized_mix({{PieceSet::single(0).with(1), w12},
                           {PieceSet::single(2).with(3), w34}});
  }

  /// Example 3's single-piece mix over K = 3: type {i} at weight wi.
  static std::vector<ArrivalSpec> example3_mix(double w1, double w2,
                                               double w3) {
    return normalized_mix({{PieceSet::single(0), w1},
                           {PieceSet::single(1), w2},
                           {PieceSet::single(2), w3}});
  }

  /// The one-club mix over K >= 2 pieces: every arrival already holds
  /// F - {0} (all but the paper's piece one) — the missing-piece-syndrome
  /// stream of Section V.
  static std::vector<ArrivalSpec> one_club_mix(int num_pieces) {
    P2P_ASSERT_MSG(num_pieces >= 2 && num_pieces <= kMaxPieces,
                   "one-club mix needs K in [2, 64]");
    return {{PieceSet::full(num_pieces).without(0), 1.0}};
  }

  std::string to_string() const {
    std::string s = "SwarmParams{K=" + std::to_string(num_pieces_) +
                    ", Us=" + std::to_string(seed_rate_) +
                    ", mu=" + std::to_string(contact_rate_) + ", gamma=" +
                    (immediate_departure() ? std::string("inf")
                                           : std::to_string(seed_depart_rate_));
    for (const auto& a : arrivals_) {
      s += ", lambda" + a.type.to_string(/*one_based=*/true) + "=" +
           std::to_string(a.rate);
    }
    return s + "}";
  }

 private:
  void validate() const { view().validate(); }

  int num_pieces_;
  double seed_rate_;
  double contact_rate_;
  double seed_depart_rate_;
  std::vector<ArrivalSpec> arrivals_;
};

}  // namespace p2p
