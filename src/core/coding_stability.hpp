// Theorem 15: stability of the network-coded system.
//
// With random linear network coding over F_q, a peer's state is the
// subspace V of F_q^K spanned by the coding vectors it holds; a random
// combination from B is useful to A with probability
// 1 - q^{dim(V_A ∩ V_B) - dim(V_B)} >= 1 - 1/q whenever V_B !⊂ V_A.
// The effective contact rate is mu~ = (1 - 1/q) mu.
//
// This header provides the closed-form pieces of Theorem 15 for the
// "gifted arrivals" family studied in Section VIII-B: peers arrive empty
// at rate lambda0 and with one uniformly random coded piece at rate
// lambda1 (Us = 0 allowed, gamma = infinity allowed). The headline
// numbers: with f = lambda1 / (lambda0 + lambda1),
//   transient          if f < q / ((q-1) K)
//   positive recurrent if f > q^2 / ((q-1)^2 K)
// (the latter a clean relaxation of the exact Eq. (55) threshold, also
// provided). Without coding, Theorem 1 makes the same system transient
// for every f < 1.
#pragma once

#include <string>

namespace p2p {

/// Effective useful-contact rate mu~ = (1 - 1/q) mu.
double coded_contact_rate(int field_size, double contact_rate);

struct CodedGiftThresholds {
  /// Transient when f is strictly below this (Theorem 15(a)).
  double transient_below = 0;
  /// Positive recurrent when f is strictly above this (paper's clean
  /// bound q^2/((q-1)^2 K)).
  double recurrent_above = 0;
  /// Exact sufficient threshold from Eq. (55):
  /// 1 / [ (1-1/q)^2 (K - 1 + q/(q-1)) ]; always <= recurrent_above.
  double recurrent_above_exact = 0;
  std::string to_string() const;
};

/// Thresholds on the gifted fraction f for the lambda0/lambda1 family with
/// Us = 0, gamma = infinity. Requires field_size >= 2, num_pieces >= 1.
CodedGiftThresholds coded_gift_thresholds(int field_size, int num_pieces);

/// Theorem 15 transience condition for the general gifted family with a
/// fixed seed and finite gamma (0 < mu < gamma): the system is transient
/// if lambda_total > [Us + lambda1 (1 - 1/q) K] / (1 - mu/gamma).
/// Returns that threshold.
double coded_transience_threshold(int field_size, int num_pieces,
                                  double seed_rate, double lambda1,
                                  double mu_over_gamma);

/// Theorem 15 recurrence condition (Eq. (55)) for the same family:
/// positive recurrent if lambda_total is below
///   [Us + lambda1 (1-1/q)(K - 1 + q/(q-1))] (1 - 1/q) / (1 - mu~/gamma).
double coded_recurrence_threshold(int field_size, int num_pieces,
                                  double seed_rate, double lambda1,
                                  double mu, double gamma);

}  // namespace p2p
