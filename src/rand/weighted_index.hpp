// WeightedIndex: a binary-indexed (Fenwick) tree over a fixed number of
// slots that supports O(log n) weight updates and O(log n) sampling of an
// index proportionally to its weight.
//
// This is the event-selection structure of the type-count simulator: one
// slot per PieceSet type, weight = peer count of that type, so drawing a
// uniform random peer is a single descending prefix search instead of the
// O(2^K) linear scan `ctmc/typecount_chain` uses. The tree is templated on
// the weight type:
//
//   * integral weights (the simulator) sample through Rng::uniform_int, so
//     selection is exact — no floating-point drift can accumulate under
//     millions of +-1 count updates;
//   * floating weights sample through Rng::uniform() * total and mirror
//     Rng::discrete's distribution (see tests/test_weighted_index.cpp).
//
// Weights must stay nonnegative; sampling requires a positive total.
#pragma once

#include <bit>
#include <cstddef>
#include <span>
#include <type_traits>
#include <vector>

#include "rand/rng.hpp"
#include "util/assert.hpp"

namespace p2p {

template <typename Weight>
class WeightedIndex {
  static_assert(std::is_arithmetic_v<Weight>);

 public:
  /// `size` slots, all weights zero.
  explicit WeightedIndex(std::size_t size)
      : size_(size),
        round_(std::bit_ceil(size | 1)),
        tree_(round_ + 1, Weight{0}),
        weight_(size, Weight{0}) {
    P2P_ASSERT(size >= 1);
  }

  /// Slots initialised from `weights`: O(n) bulk build — leaves first,
  /// then one pass folding each node into its parent — instead of n
  /// O(log n) Fenwick walks. Produces the exact tree the incremental
  /// update() path builds (pinned in test_weighted_index.cpp).
  explicit WeightedIndex(std::span<const Weight> weights)
      : WeightedIndex(weights.size()) {
    for (std::size_t i = 0; i < weights.size(); ++i) {
      P2P_ASSERT_MSG(weights[i] >= Weight{0},
                     "WeightedIndex weights must stay nonnegative");
      weight_[i] = weights[i];
      tree_[i + 1] = weights[i];
      total_ += weights[i];
    }
    for (std::size_t j = 1; j <= round_; ++j) {
      const std::size_t parent = j + (j & (~j + 1));
      if (parent <= round_) tree_[parent] += tree_[j];
    }
  }

  std::size_t size() const { return size_; }
  Weight total() const { return total_; }
  Weight weight(std::size_t i) const {
    P2P_ASSERT(i < size_);
    return weight_[i];
  }

  /// Adds `delta` to slot i's weight. The result must stay nonnegative.
  void update(std::size_t i, Weight delta) {
    P2P_ASSERT(i < size_);
    weight_[i] += delta;
    P2P_ASSERT_MSG(weight_[i] >= Weight{0},
                   "WeightedIndex weights must stay nonnegative");
    total_ += delta;
    for (std::size_t j = i + 1; j <= round_; j += j & (~j + 1)) {
      tree_[j] += delta;
    }
  }

  /// Sets slot i's weight to `w` (>= 0).
  void set(std::size_t i, Weight w) {
    P2P_ASSERT(w >= Weight{0});
    update(i, w - weight(i));
  }

  /// The smallest index i with prefix_sum(i) > r, i.e. the slot a dart at
  /// cumulative position `r` in [0, total()) lands in. Zero-weight slots
  /// are never returned. Requires 0 <= r < total().
  std::size_t find(Weight r) const {
    P2P_ASSERT(r >= Weight{0} && r < total_);
    std::size_t pos = 0;
    for (std::size_t step = round_; step > 0; step >>= 1) {
      const std::size_t next = pos + step;
      if (next <= round_ && tree_[next] <= r) {
        r -= tree_[next];
        pos = next;
      }
    }
    // pos is now the count of slots wholly below the dart. Guard the
    // floating-point edge where rounding pushes the dart past the last
    // positive slot.
    while (pos < size_ && weight_[pos] <= Weight{0}) ++pos;
    if (pos >= size_) {
      pos = size_;
      while (pos-- > 0) {
        if (weight_[pos] > Weight{0}) break;
      }
    }
    return pos;
  }

  /// Samples an index proportionally to its weight. Requires total() > 0.
  std::size_t sample(Rng& rng) const {
    P2P_ASSERT_MSG(total_ > Weight{0},
                   "WeightedIndex::sample requires a positive total weight");
    if constexpr (std::is_integral_v<Weight>) {
      return find(static_cast<Weight>(
          rng.uniform_int(static_cast<std::uint64_t>(total_))));
    } else {
      return find(static_cast<Weight>(rng.uniform() * total_));
    }
  }

 private:
  std::size_t size_;
  std::size_t round_;  // smallest power of two >= size
  std::vector<Weight> tree_;
  std::vector<Weight> weight_;
  Weight total_ = Weight{0};
};

}  // namespace p2p
