// Random-number substrate for the simulators.
//
// We use xoshiro256** (public-domain algorithm by Blackman & Vigna) seeded
// through splitmix64, rather than std::mt19937_64: it is faster, has a
// cleaner jump/split story for independent replica streams, and its exact
// output sequence is stable across standard libraries, which keeps
// simulation results reproducible bit-for-bit.
//
// All distribution helpers are methods so call sites need only carry one
// object. Sampling is allocation free.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "util/assert.hpp"

namespace p2p {

/// splitmix64 step; used for seeding and stream derivation.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  /// Derives an independent stream for replica `i` (distinct seeds via
  /// splitmix64 of the current state and index; streams are statistically
  /// independent for practical purposes).
  Rng split(std::uint64_t i) const {
    std::uint64_t sm = s_[0] ^ (0x9E3779B97F4A7C15ULL * (i + 1)) ^ s_[3];
    return Rng(splitmix64(sm));
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  /// xoshiro256** next().
  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in (0, 1] — safe as an argument to log().
  double uniform_pos() { return 1.0 - uniform(); }

  /// Uniform integer in [0, n). Requires n >= 1. Unbiased (Lemire's method
  /// with rejection).
  std::uint64_t uniform_int(std::uint64_t n) {
    P2P_ASSERT(n >= 1);
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto l = static_cast<std::uint64_t>(m);
    if (l < n) {
      const std::uint64_t t = -n % n;
      while (l < t) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform int in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    P2P_ASSERT(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    uniform_int(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  bool bernoulli(double p) { return uniform() < p; }

  /// Exponential with rate `rate` (mean 1/rate). Requires rate > 0.
  double exponential(double rate) {
    P2P_ASSERT(rate > 0);
    return -std::log(uniform_pos()) / rate;
  }

  /// Poisson with mean `mean`. Inversion for small means, PTRS-style
  /// normal-approximation rejection not needed at our scales; for large
  /// means we fall back to summing a normal approximation via the
  /// Atkinson method-free approach: split mean into chunks.
  std::int64_t poisson(double mean) {
    P2P_ASSERT(mean >= 0);
    std::int64_t total = 0;
    // Chunk to keep exp(-m) representable and the loop short.
    while (mean > 30.0) {
      // A Poisson(m) equals in law the count of Exp(1) interarrivals that
      // fit in m. For the chunk, use a Gamma-free split: Poisson(15) chunk.
      total += poisson_inversion(15.0);
      mean -= 15.0;
    }
    return total + poisson_inversion(mean);
  }

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Zero-weight entries are never selected. Requires a positive total.
  std::size_t discrete(std::span<const double> weights) {
    P2P_ASSERT_MSG(!weights.empty(),
                   "discrete() requires a nonempty weight span");
    double total = 0;
    for (double w : weights) {
      P2P_ASSERT(w >= 0);
      total += w;
    }
    P2P_ASSERT_MSG(total > 0, "discrete() requires a positive total weight");
    double u = uniform() * total;
    for (std::size_t i = 0; i + 1 < weights.size(); ++i) {
      if (u < weights[i]) return i;
      u -= weights[i];
    }
    // Land on the last strictly positive entry (guards fp rounding).
    std::size_t i = weights.size();
    while (i-- > 0) {
      if (weights[i] > 0) return i;
    }
    P2P_ASSERT(false);
    return 0;
  }

  /// Geometric: number of failures before the first success with success
  /// probability p in (0, 1].
  std::int64_t geometric_failures(double p) {
    P2P_ASSERT(p > 0 && p <= 1);
    if (p == 1.0) return 0;
    return static_cast<std::int64_t>(
        std::floor(std::log(uniform_pos()) / std::log1p(-p)));
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::int64_t poisson_inversion(double mean) {
    if (mean <= 0) return 0;
    const double l = std::exp(-mean);
    std::int64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform_pos();
    } while (p > l);
    return k - 1;
  }

  std::uint64_t s_[4] = {};
};

}  // namespace p2p
