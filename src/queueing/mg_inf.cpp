#include "queueing/mg_inf.hpp"

#include <limits>

namespace p2p {

MgInfQueue::MgInfQueue(double arrival_rate, ServiceSampler service,
                       std::uint64_t seed)
    : arrival_rate_(arrival_rate), service_(std::move(service)), rng_(seed) {
  P2P_ASSERT(arrival_rate > 0);
  next_arrival_ = rng_.exponential(arrival_rate_);
}

void MgInfQueue::step() {
  const double next_departure = departures_.empty()
                                    ? std::numeric_limits<double>::infinity()
                                    : departures_.top();
  if (next_arrival_ <= next_departure) {
    now_ = next_arrival_;
    ++arrivals_;
    departures_.push(now_ + service_(rng_));
    next_arrival_ = now_ + rng_.exponential(arrival_rate_);
  } else {
    now_ = next_departure;
    departures_.pop();
  }
}

void MgInfQueue::run_until(double t_end) {
  while (std::min(next_arrival_,
                  departures_.empty()
                      ? std::numeric_limits<double>::infinity()
                      : departures_.top()) <= t_end) {
    step();
  }
  now_ = t_end;
}

TimeSeries MgInfQueue::sample_until(double t_end, double dt) {
  TimeSeries series;
  double next_sample = now_ + dt;
  while (next_sample <= t_end) {
    run_until(next_sample);
    series.push(now_, static_cast<double>(in_system()));
    next_sample += dt;
  }
  return series;
}

MgInfQueue::ServiceSampler MgInfQueue::erlang_plus_exp(int stages,
                                                       double stage_rate,
                                                       double dwell_rate) {
  P2P_ASSERT(stages >= 0);
  P2P_ASSERT(stage_rate > 0);
  return [stages, stage_rate, dwell_rate](Rng& rng) {
    double total = 0;
    for (int i = 0; i < stages; ++i) total += rng.exponential(stage_rate);
    if (dwell_rate != std::numeric_limits<double>::infinity()) {
      total += rng.exponential(dwell_rate);
    }
    return total;
  };
}

}  // namespace p2p
