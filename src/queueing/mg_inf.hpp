// M/GI/infinity queue simulator — the dominating system of Lemma 5.
//
// In the transience proof, the peers still missing the tracked piece are
// dominated by an M/GI/infinity system whose service time is the sum of K
// Exp(mu(1-xi)) download stages plus one Exp(gamma) dwell stage. This
// module simulates a general M/GI/infinity queue (arrival rate lambda,
// service sampled by a user functor) and provides the stationary and
// maximal bounds used in the paper (Lemma 21).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "rand/rng.hpp"
#include "sim/stats.hpp"
#include "util/assert.hpp"

namespace p2p {

class MgInfQueue {
 public:
  using ServiceSampler = std::function<double(Rng&)>;

  MgInfQueue(double arrival_rate, ServiceSampler service,
             std::uint64_t seed);

  double now() const { return now_; }
  std::int64_t in_system() const {
    return static_cast<std::int64_t>(departures_.size());
  }

  /// Advances to the next event (arrival or departure).
  void step();
  void run_until(double t_end);
  /// Records the customer count every `dt` into the returned series.
  TimeSeries sample_until(double t_end, double dt);

  std::int64_t total_arrivals() const { return arrivals_; }

  /// The Exp-sum service sampler of Lemma 5: K stages at rate `stage_rate`
  /// plus one stage at rate `dwell_rate` (skipped when infinite).
  static ServiceSampler erlang_plus_exp(int stages, double stage_rate,
                                        double dwell_rate);

 private:
  double arrival_rate_;
  ServiceSampler service_;
  Rng rng_;
  double now_ = 0;
  double next_arrival_ = 0;
  std::priority_queue<double, std::vector<double>, std::greater<>>
      departures_;
  std::int64_t arrivals_ = 0;
};

}  // namespace p2p
