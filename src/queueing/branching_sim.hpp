// Stochastic simulator for the autonomous branching system of Section VI.
//
// Individuals are of type (b) — infected peers still downloading K-1
// pieces at rate mu(1-xi), then dwelling Exp(gamma) — or type (f) — former
// one-club peer seeds dwelling Exp(gamma). Both spawn type-(b) offspring
// at rate xi*mu and type-(f) offspring at rate mu while alive; gifted
// roots with |C| pieces live (K-|C|)/(mu(1-xi)) + Exp(gamma) and spawn the
// same way. All clocks independent.
//
// Tests cross-validate the empirical family sizes against the closed-form
// means m_b, m_f, m_g of core/branching.hpp, and the E11 bench replays the
// dominating compound Poisson process of Corollary 3.
#pragma once

#include <cstdint>

#include "core/branching.hpp"
#include "rand/rng.hpp"

namespace p2p {

struct BranchingFamily {
  /// Number of type-(b) / type-(f) individuals in the family, including
  /// the root when the root is of that type (so for a (b) root,
  /// total_b + total_f realizes m_b; for a gifted root, total_b + total_f
  /// realizes m_g, the root itself not counted).
  std::int64_t total_b = 0;
  std::int64_t total_f = 0;
  /// True if the exploration hit `cap` individuals and stopped early
  /// (supercritical or near-critical sample).
  bool saturated = false;
  std::int64_t total() const { return total_b + total_f; }
};

class AbsBranchingSim {
 public:
  explicit AbsBranchingSim(AbsParams params) : params_(params) {
    P2P_ASSERT(params_.xi >= 0 && params_.xi < 1);
    P2P_ASSERT(params_.contact_rate > 0);
    P2P_ASSERT(params_.seed_depart_rate > 0);
  }

  /// Family of one type-(b) root (root counted in total_b).
  BranchingFamily family_of_b(Rng& rng, std::int64_t cap = 1 << 20) const;
  /// Family of one type-(f) root (root counted in total_f).
  BranchingFamily family_of_f(Rng& rng, std::int64_t cap = 1 << 20) const;
  /// Descendants of a gifted root arriving with `pieces_on_arrival`
  /// pieces (root not counted).
  BranchingFamily family_of_gifted(int pieces_on_arrival, Rng& rng,
                                   std::int64_t cap = 1 << 20) const;

 private:
  enum class Kind { kB, kF };
  /// Lifetime of an individual that must complete `stages` downloads.
  double lifetime(int stages, Rng& rng) const;
  /// Expands the family of `root_lifetime`-lived ancestor, spawning down
  /// the generations. Adds to `family`; respects cap.
  void explore(double root_lifetime, BranchingFamily& family, Rng& rng,
               std::int64_t cap) const;

  AbsParams params_;
};

}  // namespace p2p
