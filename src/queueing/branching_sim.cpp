#include "queueing/branching_sim.hpp"

#include <limits>
#include <vector>

namespace p2p {

double AbsBranchingSim::lifetime(int stages, Rng& rng) const {
  const double download_rate = params_.contact_rate * (1.0 - params_.xi);
  double life = 0;
  for (int i = 0; i < stages; ++i) life += rng.exponential(download_rate);
  if (params_.seed_depart_rate !=
      std::numeric_limits<double>::infinity()) {
    life += rng.exponential(params_.seed_depart_rate);
  }
  return life;
}

void AbsBranchingSim::explore(double root_lifetime, BranchingFamily& family,
                              Rng& rng, std::int64_t cap) const {
  // Work-list of unexpanded individuals' lifetimes paired with whether the
  // spawned children have been counted; we only need lifetimes because
  // spawn counts given a lifetime L are Poisson(xi mu L) and Poisson(mu L).
  std::vector<double> pending = {root_lifetime};
  while (!pending.empty()) {
    if (family.total() >= cap) {
      family.saturated = true;
      return;
    }
    const double life = pending.back();
    pending.pop_back();
    const std::int64_t spawn_b =
        rng.poisson(params_.xi * params_.contact_rate * life);
    const std::int64_t spawn_f = rng.poisson(params_.contact_rate * life);
    family.total_b += spawn_b;
    family.total_f += spawn_f;
    for (std::int64_t i = 0; i < spawn_b; ++i) {
      pending.push_back(lifetime(params_.num_pieces - 1, rng));
    }
    for (std::int64_t i = 0; i < spawn_f; ++i) {
      pending.push_back(lifetime(0, rng));
    }
  }
}

BranchingFamily AbsBranchingSim::family_of_b(Rng& rng,
                                             std::int64_t cap) const {
  BranchingFamily family;
  family.total_b = 1;  // the root
  explore(lifetime(params_.num_pieces - 1, rng), family, rng, cap);
  return family;
}

BranchingFamily AbsBranchingSim::family_of_f(Rng& rng,
                                             std::int64_t cap) const {
  BranchingFamily family;
  family.total_f = 1;  // the root
  explore(lifetime(0, rng), family, rng, cap);
  return family;
}

BranchingFamily AbsBranchingSim::family_of_gifted(int pieces_on_arrival,
                                                  Rng& rng,
                                                  std::int64_t cap) const {
  P2P_ASSERT(pieces_on_arrival >= 0 &&
             pieces_on_arrival <= params_.num_pieces);
  BranchingFamily family;
  explore(lifetime(params_.num_pieces - pieces_on_arrival, rng), family, rng,
          cap);
  return family;
}

}  // namespace p2p
