// Compound Poisson processes — the dominating counting process of
// Corollary 3 — plus Kingman's moment bound (Proposition 20).
//
// \hat{\hat{D}}_t counts, at each root arrival, the total descendant batch
// of that root all at once. The generic simulator here takes an arbitrary
// batch-size sampler; core/branching.hpp supplies the ABS batch laws.
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <optional>

#include "rand/rng.hpp"
#include "sim/stats.hpp"
#include "util/assert.hpp"

namespace p2p {

class CompoundPoissonProcess {
 public:
  using BatchSampler = std::function<double(Rng&)>;

  CompoundPoissonProcess(double event_rate, BatchSampler batch,
                         std::uint64_t seed)
      : event_rate_(event_rate), batch_(std::move(batch)), rng_(seed) {
    P2P_ASSERT(event_rate > 0);
  }

  double now() const { return now_; }
  double value() const { return value_; }
  std::int64_t events() const { return events_; }

  /// Advances one jump.
  void step() {
    now_ += rng_.exponential(event_rate_);
    value_ += batch_(rng_);
    ++events_;
  }

  void run_until(double t_end) {
    // Pre-draw the next jump time so value() is right-continuous at t_end.
    while (true) {
      const double gap = rng_peek_.has_value()
                             ? *rng_peek_
                             : (rng_peek_ = rng_.exponential(event_rate_),
                                *rng_peek_);
      if (now_ + gap > t_end) {
        *rng_peek_ -= (t_end - now_);
        now_ = t_end;
        return;
      }
      now_ += gap;
      rng_peek_.reset();
      value_ += batch_(rng_);
      ++events_;
    }
  }

 private:
  double event_rate_;
  BatchSampler batch_;
  Rng rng_;
  double now_ = 0;
  double value_ = 0;
  std::int64_t events_ = 0;
  std::optional<double> rng_peek_;
};

/// Kingman's bound (Prop. 20): for a compound Poisson C with jump rate
/// alpha, jump mean m1 and mean square m2, and any B > 0 and
/// eps > alpha m1:
///   P{ C_t < B + eps t for all t } >= 1 - alpha m2 / (2 B (eps - alpha m1)).
/// Returns that lower bound (may be negative, in which case it is vacuous).
inline double kingman_lower_bound(double alpha, double m1, double m2,
                                  double budget, double eps) {
  P2P_ASSERT(alpha > 0 && budget > 0);
  P2P_ASSERT_MSG(eps > alpha * m1, "requires eps > alpha * m1");
  return 1.0 - alpha * m2 / (2.0 * budget * (eps - alpha * m1));
}

/// Lemma 21: for an M/GI/infinity queue started empty with arrival rate
/// lambda and mean service m, for B, eps > 0:
///   P{ M_t >= B + eps t for some t } <= e^{lambda(m+1)} 2^{-B} / (1-2^{-eps}).
/// Returns that upper bound.
inline double mginf_excursion_upper_bound(double lambda, double mean_service,
                                          double budget, double eps) {
  P2P_ASSERT(lambda > 0 && mean_service >= 0 && budget > 0 && eps > 0);
  return std::exp(lambda * (mean_service + 1.0)) * std::pow(2.0, -budget) /
         (1.0 - std::pow(2.0, -eps));
}

}  // namespace p2p
