#include "coding/gf.hpp"

namespace p2p {

bool is_prime(int n) {
  if (n < 2) return false;
  for (int d = 2; d * d <= n; ++d) {
    if (n % d == 0) return false;
  }
  return true;
}

bool is_supported_power_of_two(int n) {
  return n >= 2 && n <= 256 && (n & (n - 1)) == 0;
}

namespace {
// Standard primitive polynomials for GF(2^m), m = 1..8, with alpha = x a
// primitive element (0x11D for GF(256) is the Reed–Solomon convention).
constexpr std::uint32_t kPrimitivePoly[9] = {
    0, 0x3, 0x7, 0xB, 0x13, 0x25, 0x43, 0x83, 0x11D};
}  // namespace

GaloisField::GaloisField(int q) : q_(q) {
  if (is_supported_power_of_two(q)) {
    binary_ = true;
    int m = 0;
    while ((1 << m) < q) ++m;
    build_tables(m);
  } else {
    P2P_ASSERT_MSG(is_prime(q) && q <= 32749,
                   "q must be prime (<= 32749) or 2^m with m in [1,8]");
  }
}

void GaloisField::build_tables(int m) {
  const std::uint32_t poly = kPrimitivePoly[m];
  exp_.assign(static_cast<std::size_t>(q_), 0);
  log_.assign(static_cast<std::size_t>(q_), 0);
  std::uint32_t x = 1;
  for (int i = 0; i < q_ - 1; ++i) {
    exp_[static_cast<std::size_t>(i)] = static_cast<Elem>(x);
    log_[x] = i;
    x <<= 1;
    if (x & static_cast<std::uint32_t>(q_)) x ^= poly;
  }
  P2P_ASSERT_MSG(x == 1, "polynomial is not primitive");
}

GaloisField::Elem GaloisField::inv(Elem a) const {
  P2P_ASSERT_MSG(a != 0, "zero has no inverse");
  if (binary_) {
    return exp_[static_cast<std::size_t>((q_ - 1 - log_[a]) % (q_ - 1))];
  }
  // Fermat: a^(q-2) mod q.
  return pow(a, static_cast<std::uint64_t>(q_ - 2));
}

GaloisField::Elem GaloisField::pow(Elem a, std::uint64_t e) const {
  Elem result = 1;
  Elem base = a;
  while (e > 0) {
    if (e & 1) result = mul(result, base);
    base = mul(base, base);
    e >>= 1;
  }
  return result;
}

}  // namespace p2p
