#include "coding/coded_swarm.hpp"

namespace p2p {

CodedSwarmSim::CodedSwarmSim(CodedSwarmParams params, std::uint64_t seed)
    : params_(std::move(params)),
      gf_(params_.field_size),
      rng_(seed) {
  P2P_ASSERT(params_.num_pieces >= 1);
  P2P_ASSERT(params_.contact_rate > 0);
  P2P_ASSERT(params_.seed_rate >= 0);
  P2P_ASSERT(params_.seed_depart_rate > 0);
  P2P_ASSERT_MSG(params_.total_arrival_rate() > 0,
                 "total arrival rate must be positive");
  arrival_weights_.reserve(params_.arrivals.size());
  for (const auto& a : params_.arrivals) {
    P2P_ASSERT(a.rate >= 0);
    P2P_ASSERT(a.coded_pieces >= 0 && a.coded_pieces <= params_.num_pieces);
    arrival_weights_.push_back(a.rate);
  }
}

void CodedSwarmSim::add_peer(int coded_pieces) {
  Peer peer{Subspace(gf_, params_.num_pieces), now_, false, -1};
  for (int i = 0; i < coded_pieces; ++i) {
    peer.knowledge.insert(random_vector(gf_, params_.num_pieces, rng_));
  }
  peer.enlightened = !peer.knowledge.inside_hyperplane(0);
  if (peer.knowledge.complete() && params_.immediate_departure()) {
    ++departures_;  // decoded on arrival; departs instantly
    return;
  }
  peers_.push_back(std::move(peer));
  const std::size_t idx = peers_.size() - 1;
  if (peers_[idx].enlightened) ++enlightened_;
  if (peers_[idx].knowledge.complete()) {
    peers_[idx].seed_pos = static_cast<std::int32_t>(seed_indices_.size());
    seed_indices_.push_back(static_cast<std::uint32_t>(idx));
  }
}

void CodedSwarmSim::inject_peers(const std::vector<GfVector>& basis,
                                 std::int64_t count) {
  for (std::int64_t i = 0; i < count; ++i) {
    Peer peer{Subspace(gf_, params_.num_pieces), now_, false, -1};
    for (const auto& v : basis) peer.knowledge.insert(v);
    P2P_ASSERT_MSG(!(peer.knowledge.complete() &&
                     params_.immediate_departure()),
                   "cannot inject complete peers when gamma = infinity");
    peer.enlightened = !peer.knowledge.inside_hyperplane(0);
    peers_.push_back(std::move(peer));
    const std::size_t idx = peers_.size() - 1;
    if (peers_[idx].enlightened) ++enlightened_;
    if (peers_[idx].knowledge.complete()) {
      peers_[idx].seed_pos = static_cast<std::int32_t>(seed_indices_.size());
      seed_indices_.push_back(static_cast<std::uint32_t>(idx));
    }
  }
}

void CodedSwarmSim::remove_peer(std::size_t idx) {
  Peer& peer = peers_[idx];
  sojourn_.add(now_ - peer.arrival_time);
  if (peer.enlightened) --enlightened_;
  if (peer.seed_pos >= 0) {
    const auto pos = static_cast<std::size_t>(peer.seed_pos);
    const std::uint32_t last = seed_indices_.back();
    seed_indices_[pos] = last;
    peers_[last].seed_pos = static_cast<std::int32_t>(pos);
    seed_indices_.pop_back();
  }
  const std::size_t last_idx = peers_.size() - 1;
  if (idx != last_idx) {
    peers_[idx] = std::move(peers_[last_idx]);
    if (peers_[idx].seed_pos >= 0) {
      seed_indices_[static_cast<std::size_t>(peers_[idx].seed_pos)] =
          static_cast<std::uint32_t>(idx);
    }
  }
  peers_.pop_back();
  ++departures_;
}

bool CodedSwarmSim::deliver(std::size_t idx, const GfVector& v) {
  Peer& peer = peers_[idx];
  if (!peer.knowledge.insert(v)) {
    ++useless_;
    return false;
  }
  ++useful_;
  if (!peer.enlightened && !peer.knowledge.inside_hyperplane(0)) {
    peer.enlightened = true;
    ++enlightened_;
  }
  if (peer.knowledge.complete()) {
    if (params_.immediate_departure()) {
      remove_peer(idx);
    } else {
      peer.seed_pos = static_cast<std::int32_t>(seed_indices_.size());
      seed_indices_.push_back(static_cast<std::uint32_t>(idx));
    }
  }
  return true;
}

std::size_t CodedSwarmSim::random_peer_index() {
  P2P_ASSERT(!peers_.empty());
  return static_cast<std::size_t>(
      rng_.uniform_int(static_cast<std::uint64_t>(peers_.size())));
}

void CodedSwarmSim::do_arrival() {
  ++arrivals_;
  const std::size_t choice = rng_.discrete(arrival_weights_);
  add_peer(params_.arrivals[choice].coded_pieces);
}

void CodedSwarmSim::do_seed_tick() {
  // The fixed seed knows all K pieces: a random combination is a uniform
  // random vector of F_q^K.
  const std::size_t target = random_peer_index();
  if (peers_[target].knowledge.complete()) {
    ++useless_;
    return;
  }
  deliver(target, random_vector(gf_, params_.num_pieces, rng_));
}

void CodedSwarmSim::do_peer_tick() {
  const std::size_t uploader = random_peer_index();
  const std::size_t target = random_peer_index();
  if (uploader == target || peers_[uploader].knowledge.dim() == 0 ||
      peers_[target].knowledge.complete()) {
    ++useless_;
    return;
  }
  const GfVector v = peers_[uploader].knowledge.random_element(rng_);
  deliver(target, v);
}

void CodedSwarmSim::do_seed_departure() {
  P2P_ASSERT(!seed_indices_.empty());
  const std::size_t pos = static_cast<std::size_t>(
      rng_.uniform_int(static_cast<std::uint64_t>(seed_indices_.size())));
  remove_peer(seed_indices_[pos]);
}

double CodedSwarmSim::total_event_rate() const {
  const auto n = static_cast<double>(peers_.size());
  const double seed_rate = n >= 1 ? params_.seed_rate : 0.0;
  const double depart_rate =
      params_.immediate_departure()
          ? 0.0
          : params_.seed_depart_rate *
                static_cast<double>(seed_indices_.size());
  return params_.total_arrival_rate() + seed_rate + n * params_.contact_rate +
         depart_rate;
}

void CodedSwarmSim::dispatch_event() {
  const auto n = static_cast<double>(peers_.size());
  const double rates[4] = {
      params_.total_arrival_rate(), n >= 1 ? params_.seed_rate : 0.0,
      n * params_.contact_rate,
      params_.immediate_departure()
          ? 0.0
          : params_.seed_depart_rate *
                static_cast<double>(seed_indices_.size())};
  switch (rng_.discrete(rates)) {
    case 0:
      do_arrival();
      break;
    case 1:
      do_seed_tick();
      break;
    case 2:
      do_peer_tick();
      break;
    case 3:
      do_seed_departure();
      break;
  }
}

bool CodedSwarmSim::step() {
  const double total = total_event_rate();
  if (total <= 0) return false;
  now_ += rng_.exponential(total);
  dispatch_event();
  return true;
}

void CodedSwarmSim::run_until(double t_end) {
  while (now_ < t_end) {
    if (!step()) break;
  }
}

void CodedSwarmSim::run_sampled(double t_end, double dt,
                                const std::function<void(double)>& fn) {
  // Samples observe the pre-event state (holding time drawn first).
  double next_sample = now_ + dt;
  while (now_ < t_end) {
    const double total = total_event_rate();
    if (total <= 0) break;
    const double event_time = now_ + rng_.exponential(total);
    while (next_sample <= t_end && next_sample < event_time) {
      fn(next_sample);
      next_sample += dt;
    }
    now_ = event_time;
    dispatch_event();
  }
  while (next_sample <= t_end) {
    fn(next_sample);
    next_sample += dt;
  }
}

}  // namespace p2p
