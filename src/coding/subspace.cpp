#include "coding/subspace.hpp"

#include <algorithm>
#include <cmath>

namespace p2p {

GfVector random_vector(const GaloisField& gf, int k, Rng& rng) {
  GfVector v(static_cast<std::size_t>(k));
  for (auto& e : v) {
    e = static_cast<GaloisField::Elem>(
        rng.uniform_int(static_cast<std::uint64_t>(gf.size())));
  }
  return v;
}

Subspace::Subspace(const GaloisField& gf, int k) : gf_(&gf), k_(k) {
  P2P_ASSERT(k >= 1);
}

int Subspace::reduce(GfVector& v) const {
  P2P_ASSERT(static_cast<int>(v.size()) == k_);
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    const int p = pivots_[r];
    if (v[static_cast<std::size_t>(p)] == 0) continue;
    const GaloisField::Elem factor = v[static_cast<std::size_t>(p)];
    for (int c = 0; c < k_; ++c) {
      v[static_cast<std::size_t>(c)] = gf_->sub(
          v[static_cast<std::size_t>(c)],
          gf_->mul(factor, rows_[r][static_cast<std::size_t>(c)]));
    }
  }
  for (int c = 0; c < k_; ++c) {
    if (v[static_cast<std::size_t>(c)] != 0) return c;
  }
  return -1;
}

bool Subspace::insert(const GfVector& v) {
  GfVector w = v;
  const int pivot = reduce(w);
  if (pivot < 0) return false;
  // Normalize the pivot to 1.
  const GaloisField::Elem inv = gf_->inv(w[static_cast<std::size_t>(pivot)]);
  for (auto& e : w) e = gf_->mul(e, inv);
  // Back-eliminate the new pivot column from existing rows (keeps RREF).
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    const GaloisField::Elem factor =
        rows_[r][static_cast<std::size_t>(pivot)];
    if (factor == 0) continue;
    for (int c = 0; c < k_; ++c) {
      rows_[r][static_cast<std::size_t>(c)] =
          gf_->sub(rows_[r][static_cast<std::size_t>(c)],
                   gf_->mul(factor, w[static_cast<std::size_t>(c)]));
    }
  }
  // Insert keeping pivot order.
  const auto it = std::lower_bound(pivots_.begin(), pivots_.end(), pivot);
  const auto pos = static_cast<std::size_t>(it - pivots_.begin());
  pivots_.insert(it, pivot);
  rows_.insert(rows_.begin() + static_cast<std::ptrdiff_t>(pos), std::move(w));
  return true;
}

bool Subspace::contains(const GfVector& v) const {
  GfVector w = v;
  return reduce(w) < 0;
}

GfVector Subspace::random_element(Rng& rng) const {
  GfVector v(static_cast<std::size_t>(k_), 0);
  for (const auto& row : rows_) {
    const auto coeff = static_cast<GaloisField::Elem>(
        rng.uniform_int(static_cast<std::uint64_t>(gf_->size())));
    if (coeff == 0) continue;
    for (int c = 0; c < k_; ++c) {
      v[static_cast<std::size_t>(c)] =
          gf_->add(v[static_cast<std::size_t>(c)],
                   gf_->mul(coeff, row[static_cast<std::size_t>(c)]));
    }
  }
  return v;
}

bool Subspace::inside_hyperplane(int coord) const {
  P2P_ASSERT(coord >= 0 && coord < k_);
  for (const auto& row : rows_) {
    if (row[static_cast<std::size_t>(coord)] != 0) return false;
  }
  return true;
}

int Subspace::intersection_dim(const Subspace& other) const {
  P2P_ASSERT(k_ == other.k_ && gf_ == other.gf_);
  Subspace sum = *this;
  for (const auto& row : other.rows_) sum.insert(row);
  return dim() + other.dim() - sum.dim();
}

double useful_probability(const Subspace& a, const Subspace& b) {
  if (b.dim() == 0) return 0;
  const int inter = a.intersection_dim(b);
  return 1.0 - std::pow(static_cast<double>(a.field().size()),
                        static_cast<double>(inter - b.dim()));
}

}  // namespace p2p
