// CodedSwarmSim: the network-coded P2P system of Theorem 15.
//
// Same contact structure as the base model (random peer contact at rate mu
// per peer, fixed seed at rate Us, Exp(gamma) peer-seed dwell), but peers
// exchange *random linear combinations* of their coded pieces over F_q.
// A peer's state is the subspace spanned by what it has received; it can
// decode (and becomes a peer seed) when the subspace reaches dimension K.
//
// Arrivals carry `coded_pieces` independent uniformly random vectors of
// F_q^K (0 = empty peer; 1 = the "gifted" arrivals of Section VIII-B,
// useless with probability q^-K). The fixed seed transmits uniformly
// random vectors of F_q^K (a random combination of all K data pieces).
//
// The simulator tracks the coded analogue of the one-club: peers whose
// subspace lies inside the hyperplane {x : x[0] = 0} ("not enlightened").
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "coding/gf.hpp"
#include "coding/subspace.hpp"
#include "rand/rng.hpp"
#include "sim/stats.hpp"

namespace p2p {

struct CodedArrival {
  double rate = 0;
  /// Number of independent uniform random coded pieces held on arrival.
  int coded_pieces = 0;
};

struct CodedSwarmParams {
  int num_pieces = 1;       // K
  int field_size = 2;       // q
  double seed_rate = 0;     // Us
  double contact_rate = 1;  // mu
  /// gamma; +infinity = depart on decode.
  double seed_depart_rate = std::numeric_limits<double>::infinity();
  std::vector<CodedArrival> arrivals;

  double total_arrival_rate() const {
    double total = 0;
    for (const auto& a : arrivals) total += a.rate;
    return total;
  }
  bool immediate_departure() const {
    return seed_depart_rate == std::numeric_limits<double>::infinity();
  }
};

class CodedSwarmSim {
 public:
  CodedSwarmSim(CodedSwarmParams params, std::uint64_t seed);

  double now() const { return now_; }
  std::int64_t total_peers() const {
    return static_cast<std::int64_t>(peers_.size());
  }
  std::int64_t peer_seeds() const {
    return static_cast<std::int64_t>(seed_indices_.size());
  }
  /// Peers whose subspace escapes the hyperplane {x[0] = 0}
  /// ("enlightened" in the Theorem 15 proof sketch).
  std::int64_t enlightened_peers() const { return enlightened_; }
  const CodedSwarmParams& params() const { return params_; }

  /// Injects `count` peers whose subspace is spanned by `basis` (pass an
  /// empty basis for empty peers). Used to set up coded one-club states.
  void inject_peers(const std::vector<GfVector>& basis, std::int64_t count);

  bool step();
  void run_until(double t_end);
  void run_sampled(double t_end, double dt,
                   const std::function<void(double)>& fn);

  std::int64_t total_arrivals() const { return arrivals_; }
  std::int64_t total_departures() const { return departures_; }
  /// Successful (dimension-increasing) transfers.
  std::int64_t useful_transfers() const { return useful_; }
  std::int64_t useless_transfers() const { return useless_; }
  const OnlineStats& sojourn_stats() const { return sojourn_; }

 private:
  struct Peer {
    Subspace knowledge;
    double arrival_time = 0;
    bool enlightened = false;
    std::int32_t seed_pos = -1;
  };

  void add_peer(int coded_pieces);
  void remove_peer(std::size_t idx);
  /// Target receives coded vector v; returns true if useful.
  bool deliver(std::size_t idx, const GfVector& v);
  std::size_t random_peer_index();

  void do_arrival();
  void do_seed_tick();
  void do_peer_tick();
  void do_seed_departure();
  double total_event_rate() const;
  void dispatch_event();

  CodedSwarmParams params_;
  GaloisField gf_;
  Rng rng_;
  double now_ = 0;

  std::vector<Peer> peers_;
  std::vector<std::uint32_t> seed_indices_;
  std::vector<double> arrival_weights_;
  std::int64_t enlightened_ = 0;

  std::int64_t arrivals_ = 0;
  std::int64_t departures_ = 0;
  std::int64_t useful_ = 0;
  std::int64_t useless_ = 0;
  OnlineStats sojourn_;
};

}  // namespace p2p
