// Subspaces of F_q^K — the peer "type" under random linear network coding.
//
// A peer's knowledge is the span of the coding vectors it has received;
// it can decode once the span reaches dimension K. The basis is kept in
// reduced row-echelon form so membership tests, insertion and sampling of
// random elements are all O(dim * K) field operations.
#pragma once

#include <cstdint>
#include <vector>

#include "coding/gf.hpp"
#include "rand/rng.hpp"

namespace p2p {

using GfVector = std::vector<GaloisField::Elem>;

/// A uniformly random vector in F_q^K (may be the zero vector, with
/// probability q^-K — the paper's "useless gift").
GfVector random_vector(const GaloisField& gf, int k, Rng& rng);

class Subspace {
 public:
  /// The zero subspace of F_q^k. The field reference must outlive this.
  Subspace(const GaloisField& gf, int k);

  int ambient_dim() const { return k_; }
  int dim() const { return static_cast<int>(rows_.size()); }
  bool complete() const { return dim() == k_; }

  /// Reduces `v` against the basis; if the remainder is nonzero, extends
  /// the basis (dim grows by 1) and returns true. Exactly the "useful
  /// coded piece" test of Section VIII-B.
  bool insert(const GfVector& v);

  bool contains(const GfVector& v) const;

  /// A uniformly random element of the subspace (random coefficients over
  /// the basis) — what a peer transmits on contact. For dim 0 returns the
  /// zero vector.
  GfVector random_element(Rng& rng) const;

  /// True iff this subspace is contained in {x : x[coord] = 0}. The
  /// "one club" of the coded system is the set of peers whose subspace
  /// lies inside such a hyperplane.
  bool inside_hyperplane(int coord) const;

  /// dim(this ∩ other), via rank of the stacked bases:
  /// dim(A) + dim(B) - dim(A + B).
  int intersection_dim(const Subspace& other) const;

  const std::vector<GfVector>& basis() const { return rows_; }
  const GaloisField& field() const { return *gf_; }

 private:
  /// Reduces v in place against the RREF basis; returns the column of the
  /// first nonzero entry, or -1 if reduced to zero.
  int reduce(GfVector& v) const;

  const GaloisField* gf_;
  int k_;
  /// RREF rows ordered by pivot column; pivots_[i] is row i's pivot.
  std::vector<GfVector> rows_;
  std::vector<int> pivots_;
};

/// P{random element of B is useful to A} = 1 - q^{dim(A∩B) - dim(B)}
/// (Section VIII-B). Exposed for tests/benches.
double useful_probability(const Subspace& a, const Subspace& b);

}  // namespace p2p
