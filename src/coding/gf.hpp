// Finite-field arithmetic for random linear network coding (Section VIII-B).
//
// Supports GF(p) for prime p (modular arithmetic, p <= 2^15 so products fit
// in 32 bits comfortably) and GF(2^m) for m in [1, 8] (exp/log tables over
// standard primitive polynomials). That covers every field used by the
// paper's examples (q = 2 ... 256, including the headline q = 64).
//
// Elements are plain uint16_t in [0, q); the field object owns any tables
// and is immutable after construction, so it can be shared freely.
#pragma once

#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace p2p {

bool is_prime(int n);
/// True iff n = 2^m with m in [1, 8].
bool is_supported_power_of_two(int n);

class GaloisField {
 public:
  using Elem = std::uint16_t;

  /// q must be prime (<= 32749) or a power of two in [2, 256].
  explicit GaloisField(int q);

  int size() const { return q_; }

  Elem add(Elem a, Elem b) const {
    check(a);
    check(b);
    if (binary_) return a ^ b;
    const int s = a + b;
    return static_cast<Elem>(s >= q_ ? s - q_ : s);
  }

  Elem sub(Elem a, Elem b) const {
    check(a);
    check(b);
    if (binary_) return a ^ b;
    const int d = a - b;
    return static_cast<Elem>(d < 0 ? d + q_ : d);
  }

  Elem neg(Elem a) const { return sub(0, a); }

  Elem mul(Elem a, Elem b) const {
    check(a);
    check(b);
    if (a == 0 || b == 0) return 0;
    if (binary_) {
      return exp_[(log_[a] + log_[b]) % (q_ - 1)];
    }
    return static_cast<Elem>((static_cast<std::uint32_t>(a) * b) %
                             static_cast<std::uint32_t>(q_));
  }

  /// Multiplicative inverse; requires a != 0.
  Elem inv(Elem a) const;

  Elem div(Elem a, Elem b) const { return mul(a, inv(b)); }

  Elem pow(Elem a, std::uint64_t e) const;

 private:
  void check(Elem a) const { P2P_ASSERT(a < q_); }
  void build_tables(int m);

  int q_;
  bool binary_ = false;  // true for GF(2^m): addition is XOR
  std::vector<Elem> exp_;
  std::vector<int> log_;
};

}  // namespace p2p
